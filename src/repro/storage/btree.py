"""A from-scratch in-memory B-tree for ordered secondary indexes.

The hash indexes of :mod:`repro.storage.engine` serve equality probes;
range predicates (``WHERE score >= 0.8``, ``ORDER BY`` prefixes) need an
*ordered* index.  This is a classic CLRS B-tree over opaque comparable
keys — for the engine, ``(column value, primary key)`` pairs — with full
insert, delete (borrow/merge rebalancing) and iterator-based range
scans.

Keys must be mutually comparable; the engine guarantees this by typing
columns and excluding NULLs from ordered indexes.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

__all__ = ["BTree"]

Key = Any


class _Node:
    __slots__ = ("keys", "children")

    def __init__(self, leaf: bool = True) -> None:
        self.keys: list[Key] = []
        self.children: list[_Node] = [] if leaf else []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTree:
    """B-tree with minimum degree ``t`` (each node holds t-1..2t-1 keys)."""

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("min_degree must be >= 2")
        self._t = min_degree
        self._root = _Node(leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        node = self._root
        while True:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return True
            if node.leaf:
                return False
            node = node.children[index]

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: Key) -> bool:
        """Insert ``key``; returns False if it was already present."""
        if key in self:
            return False
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key)
        self._size += 1
        return True

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        sibling.keys = child.keys[t:]
        median = child.keys[t - 1]
        child.keys = child.keys[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.children.insert(index + 1, sibling)
        parent.keys.insert(index, median)

    def _insert_nonfull(self, node: _Node, key: Key) -> None:
        while not node.leaf:
            index = bisect.bisect_left(node.keys, key)
            if len(node.children[index].keys) == 2 * self._t - 1:
                self._split_child(node, index)
                if key > node.keys[index]:
                    index += 1
            node = node.children[index]
        bisect.insort(node.keys, key)

    # ------------------------------------------------------------------
    # Delete (CLRS full algorithm)
    # ------------------------------------------------------------------
    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns False when absent."""
        if key not in self:
            return False
        self._delete(self._root, key)
        if not self._root.keys and not self._root.leaf:
            self._root = self._root.children[0]
        self._size -= 1
        return True

    def _delete(self, node: _Node, key: Key) -> None:
        t = self._t
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                return
            left, right = node.children[index], node.children[index + 1]
            if len(left.keys) >= t:
                predecessor = self._max_key(left)
                node.keys[index] = predecessor
                self._delete(left, predecessor)
            elif len(right.keys) >= t:
                successor = self._min_key(right)
                node.keys[index] = successor
                self._delete(right, successor)
            else:
                self._merge(node, index)
                self._delete(left, key)
            return
        if node.leaf:
            return  # key absent (guarded by caller)
        child = node.children[index]
        if len(child.keys) == t - 1:
            index = self._grow_child(node, index)
            child = node.children[index]
        self._delete(child, key)

    def _grow_child(self, node: _Node, index: int) -> int:
        """Ensure child ``index`` has >= t keys; returns its (new) index."""
        t = self._t
        child = node.children[index]
        if index > 0 and len(node.children[index - 1].keys) >= t:
            left = node.children[index - 1]
            child.keys.insert(0, node.keys[index - 1])
            node.keys[index - 1] = left.keys.pop()
            if not left.leaf:
                child.children.insert(0, left.children.pop())
            return index
        if index < len(node.children) - 1 and len(node.children[index + 1].keys) >= t:
            right = node.children[index + 1]
            child.keys.append(node.keys[index])
            node.keys[index] = right.keys.pop(0)
            if not right.leaf:
                child.children.append(right.children.pop(0))
            return index
        if index > 0:
            self._merge(node, index - 1)
            return index - 1
        self._merge(node, index)
        return index

    def _merge(self, node: _Node, index: int) -> None:
        """Merge child ``index``, separator, child ``index+1``."""
        left = node.children[index]
        right = node.children.pop(index + 1)
        left.keys.append(node.keys.pop(index))
        left.keys.extend(right.keys)
        left.children.extend(right.children)

    def _min_key(self, node: _Node) -> Key:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    def _max_key(self, node: _Node) -> Key:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1]

    # ------------------------------------------------------------------
    # Iteration and range scans
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Key]:
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[Key]:
        if node.leaf:
            yield from node.keys
            return
        for index, key in enumerate(node.keys):
            yield from self._walk(node.children[index])
            yield key
        yield from self._walk(node.children[-1])

    def range_scan(
        self,
        low: Key | None = None,
        high: Key | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Key]:
        """Keys within [low, high] (bounds optional, inclusive by default)."""
        yield from self._range(self._root, low, high, include_low, include_high)

    def _range(
        self,
        node: _Node,
        low: Key | None,
        high: Key | None,
        include_low: bool,
        include_high: bool,
    ) -> Iterator[Key]:
        start = 0
        if low is not None:
            start = (
                bisect.bisect_left(node.keys, low)
                if include_low
                else bisect.bisect_right(node.keys, low)
            )
        for index in range(start, len(node.keys) + 1):
            if not node.leaf:
                child = node.children[index]
                yield from self._range(child, low, high, include_low, include_high)
            if index < len(node.keys):
                key = node.keys[index]
                if low is not None:
                    if key < low or (not include_low and key == low):
                        continue
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                yield key

    def min(self) -> Key | None:
        """Smallest key, or None when empty."""
        if not self._size:
            return None
        return self._min_key(self._root)

    def max(self) -> Key | None:
        """Largest key, or None when empty."""
        if not self._size:
            return None
        return self._max_key(self._root)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert B-tree structural invariants (used by tests)."""
        keys = list(self)
        assert keys == sorted(keys), "in-order traversal not sorted"
        assert len(keys) == self._size, "size counter drifted"
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool = False) -> int:
        t = self._t
        if not is_root:
            assert t - 1 <= len(node.keys) <= 2 * t - 1, "key-count bounds"
        else:
            assert len(node.keys) <= 2 * t - 1
        if node.leaf:
            return 1
        assert len(node.children) == len(node.keys) + 1, "fanout mismatch"
        depths = {self._check_node(child) for child in node.children}
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1
