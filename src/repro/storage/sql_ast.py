"""AST node definitions for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Comparison",
    "BooleanOp",
    "NotOp",
    "Statement",
    "CreateTable",
    "CreateIndex",
    "DropTable",
    "Insert",
    "Select",
    "Update",
    "Delete",
    "ColumnDef",
    "OrderBy",
]


class Expression:
    """Base class for WHERE-clause expressions."""


@dataclass(frozen=True)
class Literal(Expression):
    value: Any  # int | float | str | bool | None


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str


@dataclass(frozen=True)
class Comparison(Expression):
    operator: str  # = != < <= > >=
    left: Expression
    right: Expression


@dataclass(frozen=True)
class BooleanOp(Expression):
    operator: str  # AND | OR
    left: Expression
    right: Expression


@dataclass(frozen=True)
class NotOp(Expression):
    operand: Expression


class Statement:
    """Base class for statements."""


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: str  # int | float | str | bool | json
    nullable: bool = True


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: tuple[ColumnDef, ...]
    primary_key: str
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    table: str
    column: str
    ordered: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class OrderBy:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    table: str
    columns: tuple[str, ...]  # empty = all columns (*)
    where: Expression | None = None
    order_by: OrderBy | None = None
    limit: int | None = None
    count: bool = False  # SELECT COUNT(*)


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Any], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Expression | None = None
