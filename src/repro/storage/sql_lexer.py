"""Lexer for the storage engine's SQL dialect.

The engine's native API is programmatic (:class:`repro.storage.Database`),
but the production NNexus talks SQL to MySQL; this lexer feeds the parser
in :mod:`repro.storage.sql_parser` so deployments can use the same idiom.

Token kinds: keywords (case-insensitive), identifiers, integer/float
literals, single-quoted strings (with ``''`` escaping), operators and
punctuation.  Comments: ``-- to end of line``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import StorageError

__all__ = ["SqlSyntaxError", "Token", "tokenize"]


class SqlSyntaxError(StorageError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE",
        "SET", "DELETE", "CREATE", "TABLE", "INDEX", "ON", "PRIMARY",
        "KEY", "NOT", "NULL", "AND", "OR", "ORDER", "BY", "ASC", "DESC",
        "LIMIT", "TRUE", "FALSE", "INT", "FLOAT", "TEXT", "BOOL", "JSON",
        "COUNT", "DROP", "IF", "EXISTS", "ORDERED",
    }
)

_PUNCTUATION = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    "*": "STAR",
    ";": "SEMI",
}

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | INT | FLOAT | STRING | OP | punctuation
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value in names


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input."""
    return list(_scan(sql))


def _scan(sql: str) -> Iterator[Token]:
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char in _PUNCTUATION:
            yield Token(_PUNCTUATION[char], char, index)
            index += 1
            continue
        operator = _match_operator(sql, index)
        if operator is not None:
            yield Token("OP", "!=" if operator == "<>" else operator, index)
            index += len(operator)
            continue
        if char == "'":
            value, index = _scan_string(sql, index)
            yield Token("STRING", value, index)
            continue
        if char.isdigit() or (char == "-" and index + 1 < length and sql[index + 1].isdigit()):
            token, index = _scan_number(sql, index)
            yield token
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (sql[index].isalnum() or sql[index] == "_"):
                index += 1
            word = sql[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("KEYWORD", upper, start)
            else:
                yield Token("IDENT", word, start)
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", index)


def _match_operator(sql: str, index: int) -> str | None:
    for operator in _OPERATORS:
        if sql.startswith(operator, index):
            return operator
    return None


def _scan_string(sql: str, index: int) -> tuple[str, int]:
    start = index
    index += 1  # opening quote
    parts: list[str] = []
    while index < len(sql):
        char = sql[index]
        if char == "'":
            if sql.startswith("''", index):
                parts.append("'")
                index += 2
                continue
            return "".join(parts), index + 1
        parts.append(char)
        index += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _scan_number(sql: str, index: int) -> tuple[Token, int]:
    start = index
    if sql[index] == "-":
        index += 1
    while index < len(sql) and sql[index].isdigit():
        index += 1
    is_float = False
    if index < len(sql) and sql[index] == "." and index + 1 < len(sql) and sql[index + 1].isdigit():
        is_float = True
        index += 1
        while index < len(sql) and sql[index].isdigit():
            index += 1
    text = sql[start:index]
    return Token("FLOAT" if is_float else "INT", text, start), index
