"""A TF-IDF information-retrieval baseline for link-target selection.

Section 1.2 argues that classic IR ranking is not directly applicable to
invocation linking: "the entries that define a particular concept may not
contain the actual concept label", so term-frequency evidence for the
label is missing exactly where it matters.  This module implements the
straightforward IR adaptation anyway — rank candidate targets by cosine
similarity between the *source entry text* and each *candidate entry
text* under TF-IDF weighting — so the experiments can quantify the
paper's claim against ground truth.

The vector machinery (vocabulary, idf, sparse cosine) is implemented
here from scratch; only Python stdlib is used.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.core.concept_map import ConceptMap
from repro.core.matching import find_matches
from repro.core.models import CorpusObject, Link, LinkedDocument
from repro.core.tokenizer import Tokenizer

__all__ = ["TfIdfIndex", "TfIdfLinker"]


class TfIdfIndex:
    """TF-IDF document vectors with cosine similarity."""

    def __init__(self) -> None:
        self._tokenizer = Tokenizer()
        self._doc_vectors: dict[int, dict[str, float]] = {}
        self._doc_norms: dict[int, float] = {}
        self._document_frequency: Counter[str] = Counter()
        self._raw_terms: dict[int, Counter[str]] = {}
        self._dirty = True

    def add_document(self, doc_id: int, text: str) -> None:
        """Index (or replace) one document's term counts."""
        terms = Counter(self._tokenizer.tokenize(text).canonical_words())
        if doc_id in self._raw_terms:
            self.remove_document(doc_id)
        self._raw_terms[doc_id] = terms
        for term in terms:
            self._document_frequency[term] += 1
        self._dirty = True

    def remove_document(self, doc_id: int) -> None:
        """Drop a document from the index."""
        terms = self._raw_terms.pop(doc_id, None)
        if terms is None:
            return
        for term in terms:
            self._document_frequency[term] -= 1
            if self._document_frequency[term] <= 0:
                del self._document_frequency[term]
        self._dirty = True

    def _rebuild(self) -> None:
        total_docs = max(len(self._raw_terms), 1)
        self._doc_vectors = {}
        self._doc_norms = {}
        for doc_id, terms in self._raw_terms.items():
            vector: dict[str, float] = {}
            for term, frequency in terms.items():
                idf = math.log(total_docs / (1 + self._document_frequency[term])) + 1.0
                vector[term] = (1.0 + math.log(frequency)) * idf
            norm = math.sqrt(sum(weight * weight for weight in vector.values()))
            self._doc_vectors[doc_id] = vector
            self._doc_norms[doc_id] = norm or 1.0
        self._dirty = False

    def vector(self, doc_id: int) -> Mapping[str, float]:
        """The TF-IDF weight vector of a document."""
        if self._dirty:
            self._rebuild()
        return self._doc_vectors.get(doc_id, {})

    def similarity(self, doc_a: int, doc_b: int) -> float:
        """Cosine similarity of two indexed documents."""
        if self._dirty:
            self._rebuild()
        vector_a = self._doc_vectors.get(doc_a)
        vector_b = self._doc_vectors.get(doc_b)
        if not vector_a or not vector_b:
            return 0.0
        if len(vector_b) < len(vector_a):
            vector_a, vector_b = vector_b, vector_a
            doc_a, doc_b = doc_b, doc_a
        dot = sum(
            weight * vector_b.get(term, 0.0) for term, weight in vector_a.items()
        )
        return dot / (self._doc_norms[doc_a] * self._doc_norms[doc_b])

    def __len__(self) -> int:
        return len(self._raw_terms)


class TfIdfLinker:
    """Invocation linker that disambiguates candidates by TF-IDF cosine.

    Link-source identification is shared with NNexus (same concept map
    and scanner); only target selection differs: among the candidate
    definers of a matched label, pick the entry whose text is most
    similar to the source entry's text.
    """

    def __init__(self, objects: Iterable[CorpusObject]) -> None:
        self._tokenizer = Tokenizer()
        self._concept_map = ConceptMap()
        self._objects: dict[int, CorpusObject] = {}
        self.index = TfIdfIndex()
        for obj in objects:
            self._objects[obj.object_id] = obj
            for phrase in obj.concept_phrases():
                self._concept_map.add_phrase(phrase, obj.object_id)
            self.index.add_document(obj.object_id, obj.text)

    def link_object(self, object_id: int) -> LinkedDocument:
        """Link a stored entry (self excluded)."""
        obj = self._objects[object_id]
        return self.link_text(obj.text, source_id=object_id)

    def link_text(self, text: str, source_id: int | None = None) -> LinkedDocument:
        """Link arbitrary text; TF-IDF disambiguates candidates."""
        tokenized = self._tokenizer.tokenize(text)
        exclude = (source_id,) if source_id is not None else ()
        matches = find_matches(tokenized, self._concept_map, exclude_objects=exclude)
        document = LinkedDocument(source_text=text, matches=matches)
        for match in matches:
            target_id = self._best_candidate(match.candidates, source_id)
            if target_id is None:
                continue
            first = tokenized.tokens[match.start]
            last = tokenized.tokens[match.end - 1]
            document.links.append(
                Link(
                    source_phrase=match.surface,
                    target_id=target_id,
                    target_domain=self._objects[target_id].domain,
                    char_start=first.char_start,
                    char_end=last.char_end,
                )
            )
        return document

    def _best_candidate(
        self, candidates: Sequence[int], source_id: int | None
    ) -> int | None:
        if not candidates:
            return None
        if source_id is None or len(candidates) == 1:
            return candidates[0]
        return max(
            candidates,
            key=lambda cid: (self.index.similarity(source_id, cid), -cid),
        )
