"""Comparison linkers: lexical-only, TF-IDF IR, semiautomatic, random."""

from repro.baselines.exact import build_lexical_linker
from repro.baselines.random_pick import RandomPickLinker
from repro.baselines.semiauto import DISAMBIGUATION, SemiAutoLinker, SemiAutoOutcome
from repro.baselines.tfidf import TfIdfIndex, TfIdfLinker

__all__ = [
    "build_lexical_linker",
    "TfIdfIndex",
    "TfIdfLinker",
    "SemiAutoLinker",
    "SemiAutoOutcome",
    "DISAMBIGUATION",
    "RandomPickLinker",
]
