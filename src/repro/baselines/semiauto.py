"""Wikipedia-style semiautomatic linking (Section 1.2).

In the semiautomatic paradigm the *author* marks link sources by hand
and the system only resolves targets.  Two consequences measured by our
experiments:

* recall is bounded by author effort — unmarked invocations are never
  linked (we model authors marking each invocation with probability
  ``author_effort``);
* homonyms resolve to a *disambiguation node* rather than a concrete
  definition, which Wikipedia surveys count as "accurate" even though
  the reader must take an extra navigation step.

The simulated author marks exactly the phrases the ground truth says are
concept invocations (authors do not overlink: they know what they
meant), making this baseline's precision flattering and its recall the
honest cost, mirroring the paper's discussion of the Wikipedia survey.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.concept_map import ConceptMap
from repro.core.models import CorpusObject
from repro.core.morphology import canonicalize_phrase

__all__ = ["SemiAutoOutcome", "SemiAutoLinker", "DISAMBIGUATION"]

#: Sentinel target id for links resolved to a disambiguation node.
DISAMBIGUATION = -1


@dataclass
class SemiAutoOutcome:
    """Resolution of the author-marked phrases of one entry."""

    resolved: dict[tuple[str, ...], int] = field(default_factory=dict)
    disambiguation: list[tuple[str, ...]] = field(default_factory=list)
    broken: list[tuple[str, ...]] = field(default_factory=list)
    unmarked: list[tuple[str, ...]] = field(default_factory=list)

    @property
    def link_count(self) -> int:
        return len(self.resolved) + len(self.disambiguation)


class SemiAutoLinker:
    """Resolve author-marked phrases against the corpus.

    Parameters
    ----------
    objects:
        The corpus.
    author_effort:
        Probability that the author remembers to mark a given invocation
        (1.0 = perfectly diligent author).
    seed:
        Randomness for the author model.
    """

    def __init__(
        self,
        objects: Iterable[CorpusObject],
        author_effort: float = 0.8,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= author_effort <= 1.0:
            raise ValueError("author_effort must be within [0, 1]")
        self._concept_map = ConceptMap()
        self._rng = random.Random(seed)
        self.author_effort = author_effort
        for obj in objects:
            for phrase in obj.concept_phrases():
                self._concept_map.add_phrase(phrase, obj.object_id)

    def resolve_marked(
        self, marked_phrases: Sequence[str], exclude: int | None = None
    ) -> SemiAutoOutcome:
        """Resolve phrases the author explicitly marked."""
        outcome = SemiAutoOutcome()
        for phrase in marked_phrases:
            canonical = canonicalize_phrase(phrase)
            if not canonical:
                continue
            owners = sorted(self._concept_map.owners(phrase))
            if exclude is not None:
                owners = [oid for oid in owners if oid != exclude]
            if not owners:
                outcome.broken.append(canonical)
            elif len(owners) == 1:
                outcome.resolved[canonical] = owners[0]
            else:
                outcome.disambiguation.append(canonical)
        return outcome

    def link_entry(
        self, invocation_phrases: Sequence[str], exclude: int | None = None
    ) -> SemiAutoOutcome:
        """Author marks each true invocation with prob. ``author_effort``."""
        marked: list[str] = []
        outcome_unmarked: list[tuple[str, ...]] = []
        for phrase in invocation_phrases:
            if self._rng.random() < self.author_effort:
                marked.append(phrase)
            else:
                outcome_unmarked.append(canonicalize_phrase(phrase))
        outcome = self.resolve_marked(marked, exclude=exclude)
        outcome.unmarked = outcome_unmarked
        return outcome
