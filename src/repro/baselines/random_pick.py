"""Random-candidate disambiguation: the floor baseline.

Shares the NNexus scanner and concept map; when a label has several
defining entries the target is drawn uniformly at random.  Quantifies
how much of steering's precision is real signal versus what chance gets.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.concept_map import ConceptMap
from repro.core.matching import find_matches
from repro.core.models import CorpusObject, Link, LinkedDocument
from repro.core.tokenizer import Tokenizer

__all__ = ["RandomPickLinker"]


class RandomPickLinker:
    """Uniform-random target selection among candidates."""

    def __init__(self, objects: Iterable[CorpusObject], seed: int = 0) -> None:
        self._tokenizer = Tokenizer()
        self._concept_map = ConceptMap()
        self._objects: dict[int, CorpusObject] = {}
        self._rng = random.Random(seed)
        for obj in objects:
            self._objects[obj.object_id] = obj
            for phrase in obj.concept_phrases():
                self._concept_map.add_phrase(phrase, obj.object_id)

    def link_object(self, object_id: int) -> LinkedDocument:
        """Link a stored entry with random candidate choice."""
        obj = self._objects[object_id]
        return self.link_text(obj.text, exclude=object_id)

    def link_text(self, text: str, exclude: int | None = None) -> LinkedDocument:
        """Link arbitrary text with random candidate choice."""
        tokenized = self._tokenizer.tokenize(text)
        exclusions = (exclude,) if exclude is not None else ()
        matches = find_matches(tokenized, self._concept_map, exclude_objects=exclusions)
        document = LinkedDocument(source_text=text, matches=matches)
        for match in matches:
            target_id = self._rng.choice(list(match.candidates))
            first = tokenized.tokens[match.start]
            last = tokenized.tokens[match.end - 1]
            document.links.append(
                Link(
                    source_phrase=match.surface,
                    target_id=target_id,
                    target_domain=self._objects[target_id].domain,
                    char_start=first.char_start,
                    char_end=last.char_end,
                )
            )
        return document
