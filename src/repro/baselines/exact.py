"""Lexical-only linking: the paper's own ablation baseline.

"Without classification-based link steering or link policies" — the
first row of Table 2.  Implemented as a thin construction helper around
:class:`~repro.core.linker.NNexus` with both quality mechanisms switched
off, so the baseline shares the scanner and concept map exactly (the
comparison isolates steering/policies, not tokenization details).
Homonym ties fall back to collection priority then lowest object id,
matching the behaviour of a naive first-match linker.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.config import NNexusConfig
from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.ontology.scheme import ClassificationScheme

__all__ = ["build_lexical_linker"]


def build_lexical_linker(
    objects: Iterable[CorpusObject],
    scheme: ClassificationScheme | None = None,
    config: NNexusConfig | None = None,
) -> NNexus:
    """An NNexus with steering and policies disabled (lexical matching only)."""
    linker = NNexus(
        scheme=scheme,
        config=config,
        enable_steering=False,
        enable_policies=False,
    )
    linker.add_objects(objects)
    return linker
