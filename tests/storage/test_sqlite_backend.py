"""SqliteBackend regressions: host-parameter limits, open-failure
hygiene, quick_check parsing, and the labels table round trip.
"""

import gc
import sqlite3
import warnings

import pytest

from repro.core.errors import StorageCorruptionError
from repro.core.models import CorpusObject
from repro.persistence.sqlite_backend import (
    _SQLITE_MAX_VARS,
    SqliteBackend,
    _quick_check_problems,
)


def make_object(object_id: int, defines=()) -> CorpusObject:
    return CorpusObject(
        object_id=object_id,
        title=f"entry {object_id}",
        defines=list(defines),
        text=f"body of {object_id}",
    )


class TestMarkInvalidChunking:
    def test_chunk_size_is_under_the_999_parameter_limit(self) -> None:
        # SQLite builds older than 3.32 cap host parameters at 999; a
        # single IN (...) with one ? per id breaks there.
        assert _SQLITE_MAX_VARS <= 999

    def test_invalidating_more_ids_than_the_limit_marks_all_rows(
        self, tmp_path
    ) -> None:
        backend = SqliteBackend(tmp_path)
        total = _SQLITE_MAX_VARS * 2 + 7  # forces at least three chunks
        for object_id in range(total):
            backend.record_add(make_object(object_id), ())
            backend.record_rendering(object_id, "html", f"<p>{object_id}</p>")
        backend.record_add(make_object(total), (), labels=())
        # One journal record invalidates every other entry at once —
        # the homonym-heavy-removal shape that used to overflow.
        backend.record_remove(total, range(total))
        snapshot = backend.load()
        assert len(snapshot.renderings) == total
        assert all(not rendering.valid for rendering in snapshot.renderings)
        backend.close()


class TestOpenFailureHygiene:
    def test_corrupt_file_raises_and_closes_the_connection(self, tmp_path) -> None:
        (tmp_path / "corpus.sqlite3").write_bytes(b"this is not a database\x00" * 64)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(StorageCorruptionError):
                SqliteBackend(tmp_path)
            gc.collect()  # a leaked connection surfaces as a ResourceWarning
        leaks = [w for w in caught if issubclass(w.category, ResourceWarning)]
        assert not leaks, [str(w.message) for w in leaks]

    def test_reports_quick_check_verdicts(self, tmp_path) -> None:
        # A structurally valid sqlite file that fails quick_check is the
        # other open-failure path; emulate it at the parsing layer.
        class FakeCursor:
            def __init__(self, rows):
                self._rows = rows

            def fetchall(self):
                return self._rows

        class FakeConn:
            def __init__(self, rows):
                self._rows = rows

            def execute(self, sql):
                assert "quick_check" in sql
                return FakeCursor(self._rows)

        assert _quick_check_problems(FakeConn([("ok",)])) == []
        # Multi-row output: every problem row matters, not just the first.
        assert _quick_check_problems(
            FakeConn([("row 12 missing from index foo",), ("ok",)])
        ) == ["row 12 missing from index foo", "ok"]
        assert _quick_check_problems(FakeConn([])) == [
            "quick_check returned no rows"
        ]

    def test_healthy_open_round_trips(self, tmp_path) -> None:
        backend = SqliteBackend(tmp_path)
        backend.record_add(make_object(1), ())
        backend.close()
        reopened = SqliteBackend(tmp_path)
        assert [obj.object_id for obj in reopened.load().objects] == [1]
        reopened.close()


class TestLabelsTable:
    def test_labels_round_trip_by_segment_and_object(self, tmp_path) -> None:
        backend = SqliteBackend(tmp_path)
        labels = [("abelian", "group"), ("group",), ("zeta", "function")]
        backend.record_add(make_object(7), (), labels=labels)
        assert backend.supports_labels
        assert backend.load_object_labels(7) == sorted(labels)
        from repro.core.concept_map import label_segment

        segment = label_segment("group")
        rows = backend.load_label_segment(segment)
        assert (("group",), 7) in rows
        assert all(label_segment(words[0]) == segment for words, _ in rows)
        stats = backend.label_stats()
        assert stats == {"labels": 3, "objects": 1, "buckets": 3}

        # record_update replaces the rows; record_remove drops them.
        backend.record_update(make_object(7), (), labels=[("torsion",)])
        assert backend.load_object_labels(7) == [("torsion",)]
        backend.record_remove(7, ())
        assert backend.load_object_labels(7) == []
        assert backend.label_stats()["labels"] == 0
        backend.close()
