"""Tests for the embedded storage engine."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import (
    DuplicateKeyError,
    MissingKeyError,
    SchemaError,
    StorageError,
    TransactionError,
)
from repro.storage.engine import Column, Database, Schema


def people_schema() -> Schema:
    return Schema(
        columns=(
            Column("id", "int"),
            Column("name", "str"),
            Column("age", "int", nullable=True),
            Column("tags", "json", nullable=True),
        ),
        primary_key="id",
    )


def fresh_db() -> Database:
    db = Database()
    db.create_table("people", people_schema(), indexes=("name",))
    return db


class TestSchema:
    def test_unknown_column_type_rejected(self) -> None:
        with pytest.raises(SchemaError):
            Column("x", "blob")

    def test_duplicate_columns_rejected(self) -> None:
        with pytest.raises(SchemaError):
            Schema(columns=(Column("a"), Column("a")), primary_key="a")

    def test_primary_key_must_exist(self) -> None:
        with pytest.raises(SchemaError):
            Schema(columns=(Column("a"),), primary_key="b")

    def test_type_validation(self) -> None:
        schema = people_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"id": "not-int", "name": "x"})
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "name": 5})

    def test_bool_is_not_int(self) -> None:
        with pytest.raises(SchemaError):
            people_schema().validate_row({"id": True, "name": "x"})

    def test_nullable_defaults(self) -> None:
        row = people_schema().validate_row({"id": 1, "name": "a"})
        assert row["age"] is None

    def test_not_nullable_enforced(self) -> None:
        with pytest.raises(SchemaError):
            people_schema().validate_row({"id": 1})

    def test_unknown_column_rejected(self) -> None:
        with pytest.raises(SchemaError):
            people_schema().validate_row({"id": 1, "name": "x", "oops": 2})

    def test_schema_round_trip(self) -> None:
        schema = people_schema()
        assert Schema.from_dict(schema.to_dict()) == schema


class TestCrud:
    def test_insert_get(self) -> None:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada"})
        assert db.table("people").get(1)["name"] == "ada"

    def test_duplicate_pk_rejected(self) -> None:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada"})
        with pytest.raises(DuplicateKeyError):
            db.insert("people", {"id": 1, "name": "bob"})

    def test_null_pk_rejected(self) -> None:
        db = fresh_db()
        with pytest.raises(SchemaError):
            db.insert("people", {"name": "ada"})

    def test_update(self) -> None:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada"})
        db.update("people", 1, {"age": 36})
        assert db.table("people").get(1)["age"] == 36

    def test_update_missing_raises(self) -> None:
        with pytest.raises(MissingKeyError):
            fresh_db().update("people", 9, {"age": 1})

    def test_update_changing_pk(self) -> None:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada"})
        db.update("people", 1, {"id": 2})
        assert db.table("people").get(1) is None
        assert db.table("people").get(2)["name"] == "ada"

    def test_update_pk_collision_rejected(self) -> None:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada"})
        db.insert("people", {"id": 2, "name": "bob"})
        with pytest.raises(DuplicateKeyError):
            db.update("people", 1, {"id": 2})

    def test_delete(self) -> None:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada"})
        db.delete("people", 1)
        assert 1 not in db.table("people")
        with pytest.raises(MissingKeyError):
            db.delete("people", 1)

    def test_upsert(self) -> None:
        db = fresh_db()
        db.upsert("people", {"id": 1, "name": "ada"})
        db.upsert("people", {"id": 1, "name": "ada lovelace"})
        assert db.table("people").get(1)["name"] == "ada lovelace"
        assert len(db.table("people")) == 1

    def test_rows_returned_are_copies(self) -> None:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada", "tags": ["x"]})
        row = db.table("people").get(1)
        row["name"] = "mutated"
        assert db.table("people").get(1)["name"] == "ada"


class TestQueries:
    def build(self) -> Database:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada", "age": 36})
        db.insert("people", {"id": 2, "name": "bob", "age": 36})
        db.insert("people", {"id": 3, "name": "ada", "age": 99})
        return db

    def test_select_on_indexed_column(self) -> None:
        rows = self.build().table("people").select(name="ada")
        assert sorted(r["id"] for r in rows) == [1, 3]

    def test_select_on_unindexed_column(self) -> None:
        rows = self.build().table("people").select(age=36)
        assert sorted(r["id"] for r in rows) == [1, 2]

    def test_select_combined(self) -> None:
        rows = self.build().table("people").select(name="ada", age=36)
        assert [r["id"] for r in rows] == [1]

    def test_scan_with_predicate(self) -> None:
        db = self.build()
        rows = list(db.table("people").scan(lambda r: r["age"] > 50))
        assert [r["id"] for r in rows] == [3]

    def test_index_created_after_rows_exist(self) -> None:
        db = self.build()
        db.table("people").create_index("age")
        assert "age" in db.table("people").indexes()
        rows = db.table("people").select(age=99)
        assert [r["id"] for r in rows] == [3]

    def test_index_maintained_on_delete(self) -> None:
        db = self.build()
        db.delete("people", 1)
        rows = db.table("people").select(name="ada")
        assert [r["id"] for r in rows] == [3]

    def test_json_column_indexable(self) -> None:
        db = fresh_db()
        db.table("people").create_index("tags")
        db.insert("people", {"id": 1, "name": "x", "tags": ["a", "b"]})
        rows = db.table("people").select(tags=["a", "b"])
        assert [r["id"] for r in rows] == [1]


class TestTables:
    def test_duplicate_table_rejected(self) -> None:
        db = fresh_db()
        with pytest.raises(StorageError):
            db.create_table("people", people_schema())

    def test_unknown_table_raises(self) -> None:
        with pytest.raises(StorageError):
            fresh_db().table("nope")

    def test_tables_listing(self) -> None:
        assert fresh_db().tables() == ["people"]


class TestTransactions:
    def test_commit_keeps_changes(self) -> None:
        db = fresh_db()
        with db.transaction():
            db.insert("people", {"id": 1, "name": "ada"})
        assert db.table("people").get(1) is not None

    def test_rollback_on_exception(self) -> None:
        db = fresh_db()
        db.insert("people", {"id": 1, "name": "ada"})
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("people", {"id": 2, "name": "bob"})
                db.update("people", 1, {"name": "mutated"})
                db.delete("people", 1)
                raise RuntimeError("boom")
        assert db.table("people").get(1)["name"] == "ada"
        assert db.table("people").get(2) is None

    def test_nested_begin_rejected(self) -> None:
        db = fresh_db()
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin(self) -> None:
        with pytest.raises(TransactionError):
            fresh_db().commit()

    def test_rollback_without_begin(self) -> None:
        with pytest.raises(TransactionError):
            fresh_db().rollback()


class TestPersistence:
    def test_wal_replay(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("people", people_schema(), indexes=("name",))
        db.insert("people", {"id": 1, "name": "ada"})
        db.update("people", 1, {"age": 36})
        db.insert("people", {"id": 2, "name": "bob"})
        db.delete("people", 2)
        db.close()

        reopened = Database(path)
        assert reopened.table("people").get(1)["age"] == 36
        assert reopened.table("people").get(2) is None
        assert reopened.table("people").select(name="ada")
        reopened.close()

    def test_checkpoint_truncates_wal(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("people", people_schema())
        db.insert("people", {"id": 1, "name": "ada"})
        db.checkpoint()
        assert (path / "snapshot.json").exists()
        assert (path / "wal.jsonl").read_text() == ""
        db.insert("people", {"id": 2, "name": "bob"})
        db.close()

        reopened = Database(path)
        assert len(reopened.table("people")) == 2
        reopened.close()

    def test_torn_wal_tail_ignored(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("people", people_schema())
        db.insert("people", {"id": 1, "name": "ada"})
        db.close()
        with open(path / "wal.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"op": "insert", "table": "people", "row": {"id"')
        reopened = Database(path)
        assert reopened.table("people").get(1) is not None
        reopened.close()

    def test_rolled_back_transaction_not_in_wal(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("people", people_schema())
        db.begin()
        db.insert("people", {"id": 7, "name": "ghost"})
        db.rollback()
        db.close()
        wal_text = (path / "wal.jsonl").read_text()
        assert "ghost" not in wal_text

    def test_snapshot_is_valid_json(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("people", people_schema())
        db.insert("people", {"id": 1, "name": "ada", "tags": [1, 2]})
        db.checkpoint()
        db.close()
        payload = json.loads((path / "snapshot.json").read_text())
        assert payload["format"] == 2
        assert payload["tables"]["people"]["rows"][0]["tags"] == [1, 2]

    def test_legacy_snapshot_still_loads(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("people", people_schema())
        db.insert("people", {"id": 1, "name": "ada"})
        db.checkpoint()
        db.close()
        # Rewrite the snapshot in the pre-checksum format (bare tables).
        snapshot_path = path / "snapshot.json"
        payload = json.loads(snapshot_path.read_text())
        snapshot_path.write_text(json.dumps(payload["tables"]))
        reopened = Database(path)
        assert reopened.table("people").get(1)["name"] == "ada"
        reopened.close()

    def test_legacy_unframed_wal_still_replays(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("people", people_schema())
        db.close()
        with open(path / "wal.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"op": "insert", "table": "people", "row": '
                         '{"id": 9, "name": "old", "age": null, "tags": null}}\n')
        reopened = Database(path)
        assert reopened.table("people").get(9)["name"] == "old"
        reopened.close()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "update"]), st.integers(0, 5)),
        max_size=25,
    )
)
def test_wal_replay_reaches_identical_state(ops) -> None:
    """Whatever op sequence runs, reopening from WAL rebuilds the same rows."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        _check_wal_replay(ops, f"{tmp}/db")


def _check_wal_replay(ops, path) -> None:
    db = Database(path)
    db.create_table("t", Schema((Column("id", "int"), Column("v", "int", nullable=True)), "id"))
    table = db.table("t")
    for op, key in ops:
        try:
            if op == "insert":
                db.insert("t", {"id": key, "v": key * 10})
            elif op == "delete":
                db.delete("t", key)
            else:
                db.update("t", key, {"v": key + 1})
        except StorageError:
            pass
    expected = {pk: table.get(pk) for pk in table.keys()}
    db.close()
    reopened = Database(path)
    actual = {pk: reopened.table("t").get(pk) for pk in reopened.table("t").keys()}
    assert actual == expected
    reopened.close()
