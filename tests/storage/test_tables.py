"""Tests for the NNexus table layout and linker round-tripping."""

from repro.core.models import CorpusObject
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.storage.tables import NNexusStore


class TestSaveLoad:
    def test_object_round_trip(self) -> None:
        store = NNexusStore()
        obj = CorpusObject(
            object_id=7,
            title="even number",
            defines=["even number", "even"],
            synonyms=["even integer"],
            classes=["11A05"],
            text="Divisible by two.",
            domain="planetmath",
            linking_policy="forbid even\npermit even 11\n",
        )
        store.save_object(obj)
        loaded = store.load_object(7)
        assert loaded == obj

    def test_missing_object_is_none(self) -> None:
        assert NNexusStore().load_object(404) is None

    def test_save_replaces_dependents(self) -> None:
        store = NNexusStore()
        store.save_object(CorpusObject(1, "a", defines=["alpha"], classes=["05"]))
        store.save_object(CorpusObject(1, "a", defines=["beta"], classes=["03"]))
        assert store.concepts_defining("alpha") == []
        assert store.concepts_defining("beta") == [1]
        loaded = store.load_object(1)
        assert loaded.classes == ["03"]

    def test_delete_object_cleans_everything(self) -> None:
        store = NNexusStore()
        store.save_object(
            CorpusObject(1, "a", defines=["alpha"], classes=["05"],
                         linking_policy="forbid alpha\n")
        )
        store.put_cache(1, "<p>x</p>")
        store.delete_object(1)
        assert store.load_object(1) is None
        assert store.concepts_defining("alpha") == []
        assert store.object_count() == 0

    def test_save_corpus_counts(self) -> None:
        store = NNexusStore()
        assert store.save_corpus(sample_corpus()) == 30
        assert store.object_count() == 30

    def test_concepts_defining_homonyms(self) -> None:
        store = NNexusStore()
        store.save_corpus(sample_corpus())
        assert store.concepts_defining("graph") == [5, 6]


class TestPolicyAndCache:
    def test_set_policy(self) -> None:
        store = NNexusStore()
        store.save_object(CorpusObject(1, "a", defines=["alpha"]))
        store.set_policy(1, "forbid alpha\n")
        assert store.load_object(1).linking_policy == "forbid alpha\n"
        store.set_policy(1, "")
        assert store.load_object(1).linking_policy == ""

    def test_cache_invalidation(self) -> None:
        store = NNexusStore()
        store.save_object(CorpusObject(1, "a", defines=["alpha"]))
        store.put_cache(1, "<p>x</p>")
        store.invalidate_cache([1, 99])
        row = store.database.table("cache").get(1)
        assert row["valid"] is False


class TestLinkerRoundTrip:
    def test_rebuild_linker_from_store(self) -> None:
        store = NNexusStore()
        store.save_corpus(sample_corpus())
        linker = store.build_linker(scheme=build_small_msc())
        assert len(linker) == 30
        document = linker.link_text("every planar graph", source_classes=["05C10"])
        assert [l.target_id for l in document.links] == [2]

    def test_policies_survive_round_trip(self) -> None:
        store = NNexusStore()
        store.save_corpus(sample_corpus())
        linker = store.build_linker(scheme=build_small_msc())
        doc = linker.link_text("even so it holds", source_classes=["05C99"])
        assert all(l.source_phrase != "even" for l in doc.links)


class TestPersistentStore:
    def test_reopen_from_disk(self, tmp_path) -> None:
        path = tmp_path / "store"
        store = NNexusStore(path)
        store.save_corpus(sample_corpus())
        store.checkpoint()
        store.close()

        reopened = NNexusStore(path)
        assert reopened.object_count() == 30
        assert reopened.load_object(5).title == "graph"
        reopened.close()

    def test_fresh_ids_continue_after_reopen(self, tmp_path) -> None:
        path = tmp_path / "store"
        store = NNexusStore(path)
        store.save_object(CorpusObject(1, "a", defines=["alpha"], classes=["05"]))
        store.close()
        reopened = NNexusStore(path)
        reopened.save_object(CorpusObject(2, "b", defines=["beta"], classes=["03"]))
        assert reopened.concepts_defining("beta") == [2]
        reopened.close()
