"""Tests for the B-tree ordered index."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.btree import BTree


class TestBasics:
    def test_insert_contains(self) -> None:
        tree = BTree(min_degree=2)
        assert tree.insert(5)
        assert 5 in tree
        assert 6 not in tree
        assert len(tree) == 1

    def test_duplicate_insert_rejected(self) -> None:
        tree = BTree(min_degree=2)
        tree.insert(5)
        assert not tree.insert(5)
        assert len(tree) == 1

    def test_in_order_iteration(self) -> None:
        tree = BTree(min_degree=2)
        for value in [9, 1, 7, 3, 5, 8, 2, 6, 4, 0]:
            tree.insert(value)
        assert list(tree) == list(range(10))

    def test_min_max(self) -> None:
        tree = BTree(min_degree=2)
        assert tree.min() is None and tree.max() is None
        for value in [4, 2, 9]:
            tree.insert(value)
        assert tree.min() == 2
        assert tree.max() == 9

    def test_small_degree_splits(self) -> None:
        tree = BTree(min_degree=2)
        for value in range(100):
            tree.insert(value)
        tree.check_invariants()
        assert len(tree) == 100

    def test_invalid_degree(self) -> None:
        with pytest.raises(ValueError):
            BTree(min_degree=1)


class TestDelete:
    def test_delete_leaf_key(self) -> None:
        tree = BTree(min_degree=2)
        for value in range(10):
            tree.insert(value)
        assert tree.delete(3)
        assert 3 not in tree
        assert len(tree) == 9
        tree.check_invariants()

    def test_delete_absent(self) -> None:
        tree = BTree(min_degree=2)
        tree.insert(1)
        assert not tree.delete(99)

    def test_delete_everything_random_order(self) -> None:
        rng = random.Random(3)
        values = list(range(200))
        tree = BTree(min_degree=2)
        for value in values:
            tree.insert(value)
        rng.shuffle(values)
        for value in values:
            assert tree.delete(value)
            tree.check_invariants()
        assert len(tree) == 0
        assert list(tree) == []

    def test_root_collapse(self) -> None:
        tree = BTree(min_degree=2)
        for value in range(7):
            tree.insert(value)
        for value in range(7):
            tree.delete(value)
        tree.insert(42)
        assert list(tree) == [42]


class TestRangeScan:
    def build(self) -> BTree:
        tree = BTree(min_degree=2)
        for value in range(0, 100, 2):  # evens 0..98
            tree.insert(value)
        return tree

    def test_closed_range(self) -> None:
        assert list(self.build().range_scan(10, 20)) == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self) -> None:
        tree = self.build()
        assert list(tree.range_scan(10, 20, include_low=False, include_high=False)) == [
            12, 14, 16, 18,
        ]

    def test_open_ended(self) -> None:
        tree = self.build()
        assert list(tree.range_scan(low=94)) == [94, 96, 98]
        assert list(tree.range_scan(high=4)) == [0, 2, 4]
        assert list(tree.range_scan()) == list(range(0, 100, 2))

    def test_empty_range(self) -> None:
        assert list(self.build().range_scan(11, 11)) == []

    def test_range_on_tuple_keys(self) -> None:
        tree = BTree(min_degree=2)
        for value, pk in [(1.0, 5), (1.0, 2), (2.0, 9), (0.5, 1)]:
            tree.insert((value, pk))
        assert list(tree.range_scan((1.0, -1), (1.0, 10**9))) == [(1.0, 2), (1.0, 5)]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-500, 500), max_size=150))
def test_matches_sorted_set_reference(values: list[int]) -> None:
    tree = BTree(min_degree=2)
    reference: set[int] = set()
    for value in values:
        assert tree.insert(value) == (value not in reference)
        reference.add(value)
    assert list(tree) == sorted(reference)
    tree.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(-60, 60)), max_size=120
    )
)
def test_mixed_operations_match_reference(ops: list[tuple[bool, int]]) -> None:
    tree = BTree(min_degree=2)
    reference: set[int] = set()
    for is_insert, value in ops:
        if is_insert:
            assert tree.insert(value) == (value not in reference)
            reference.add(value)
        else:
            assert tree.delete(value) == (value in reference)
            reference.discard(value)
    assert list(tree) == sorted(reference)
    assert len(tree) == len(reference)
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 200), max_size=100),
    st.integers(0, 200),
    st.integers(0, 200),
)
def test_range_scan_matches_filter(values: list[int], a: int, b: int) -> None:
    low, high = min(a, b), max(a, b)
    tree = BTree(min_degree=2)
    for value in values:
        tree.insert(value)
    expected = sorted(v for v in set(values) if low <= v <= high)
    assert list(tree.range_scan(low, high)) == expected
