"""Crash-recovery torture tests for the storage engine.

The invariant under test: whatever kill point is injected — the WAL
truncated at ANY byte offset, an fsync or rename failing mid-checkpoint,
a torn write mid-commit — reopening the database recovers exactly a
*prefix of committed transactions*.  Never part of a transaction, never
a later transaction without an earlier one, never silent loss of state
that a checkpoint or fsync already made durable.
"""

import json
import shutil

import pytest

from repro.core.errors import StorageCorruptionError, StorageError
from repro.storage.engine import Column, Database, Schema
from repro.storage.faults import FaultInjectedError, StorageFaultInjector


def kv_schema() -> Schema:
    return Schema(
        columns=(Column("id", "int"), Column("v", "str", nullable=True)),
        primary_key="id",
    )


def table_state(db: Database, table: str = "t") -> dict:
    if not db.has_table(table):
        return {}
    return {pk: db.table(table).get(pk) for pk in db.table(table).keys()}


def build_committed_history(path) -> list[dict]:
    """Run a scripted op sequence; return the state after each commit.

    Mixes single-op auto-commits and multi-op transactions so the WAL
    holds both framed record shapes.
    """
    db = Database(path)
    states = [table_state(db)]

    db.create_table("t", kv_schema(), indexes=("v",))
    states.append(table_state(db))

    db.insert("t", {"id": 1, "v": "one"})
    states.append(table_state(db))

    with db.transaction():
        db.insert("t", {"id": 2, "v": "two"})
        db.insert("t", {"id": 3, "v": "three"})
        db.update("t", 1, {"v": "one-revised"})
    states.append(table_state(db))

    db.delete("t", 2)
    states.append(table_state(db))

    with db.transaction():
        db.insert("t", {"id": 4, "v": "four"})
        db.delete("t", 3)
    states.append(table_state(db))

    db.close()
    return states


class TestEveryByteOffset:
    def test_wal_truncated_at_every_offset_recovers_a_committed_prefix(
        self, tmp_path
    ) -> None:
        origin = tmp_path / "origin"
        states = build_committed_history(origin)
        wal = (origin / "wal.jsonl").read_bytes()
        assert len(wal) > 0

        reached: set[int] = set()
        for cut in range(len(wal) + 1):
            trial = tmp_path / "trial"
            if trial.exists():
                shutil.rmtree(trial)
            shutil.copytree(origin, trial)
            (trial / "wal.jsonl").write_bytes(wal[:cut])
            db = Database(trial)
            recovered = table_state(db)
            db.close()
            matching = [i for i, state in enumerate(states) if state == recovered]
            assert matching, (
                f"cut at byte {cut} recovered a state that was never "
                f"committed: {recovered!r}"
            )
            reached.add(matching[0])
        # Sanity on the harness itself: both the empty prefix and the
        # full history must be reachable, plus intermediate commits.
        assert 0 in reached
        assert len(states) - 1 in reached
        assert len(reached) >= 4

    def test_recovery_is_monotone_in_cut_offset(self, tmp_path) -> None:
        """Longer surviving WAL prefixes never recover *older* states."""
        origin = tmp_path / "origin"
        states = build_committed_history(origin)
        wal = (origin / "wal.jsonl").read_bytes()
        last_index = 0
        for cut in range(0, len(wal) + 1, 7):
            trial = tmp_path / "trial"
            if trial.exists():
                shutil.rmtree(trial)
            shutil.copytree(origin, trial)
            (trial / "wal.jsonl").write_bytes(wal[:cut])
            db = Database(trial)
            recovered = table_state(db)
            db.close()
            index = states.index(recovered)
            assert index >= last_index
            last_index = index


class TestTornTailAppend:
    def test_append_after_torn_tail_survives_the_next_recovery(self, tmp_path) -> None:
        """Regression: the WAL must be truncated to the last valid record
        before reopening for append, or the first post-recovery commit is
        glued onto the partial line and destroyed by the *next* recovery."""
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("t", kv_schema())
        db.insert("t", {"id": 1, "v": "a"})
        db.close()
        with open(path / "wal.jsonl", "ab") as handle:
            handle.write(b'17 deadbeef {"op": "ins')  # torn frame, no newline

        survivor = Database(path)
        assert survivor.table("t").get(1) is not None
        survivor.insert("t", {"id": 2, "v": "b"})
        survivor.close()

        reopened = Database(path)
        assert reopened.table("t").get(1) is not None
        assert reopened.table("t").get(2) is not None, (
            "commit after torn-tail recovery was lost on the next recovery"
        )
        reopened.close()

    def test_torn_tail_is_truncated_on_disk(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("t", kv_schema())
        db.close()
        clean_size = (path / "wal.jsonl").stat().st_size
        with open(path / "wal.jsonl", "ab") as handle:
            handle.write(b"999 00000000 {tor")
        db = Database(path)
        assert db.last_recovery.torn_bytes_dropped == 17
        assert (path / "wal.jsonl").stat().st_size == clean_size
        db.close()

    def test_bit_flip_mid_wal_stops_replay_before_it(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("t", kv_schema())
        db.insert("t", {"id": 1, "v": "a"})
        db.insert("t", {"id": 2, "v": "b"})
        db.close()
        wal = bytearray((path / "wal.jsonl").read_bytes())
        # Corrupt one byte inside the SECOND insert's JSON body.
        lines = bytes(wal).split(b"\n")
        offset = len(lines[0]) + 1 + len(lines[1]) + 1 + len(lines[2]) // 2
        wal[offset] ^= 0xFF
        (path / "wal.jsonl").write_bytes(bytes(wal))
        db = Database(path)
        assert db.table("t").get(1) is not None
        assert db.table("t").get(2) is None  # CRC rejected the flipped record
        db.close()


class TestCheckpointFaults:
    def populated(self, path, faults=None) -> Database:
        db = Database(path, faults=faults)
        db.create_table("t", kv_schema())
        db.insert("t", {"id": 1, "v": "a"})
        db.insert("t", {"id": 2, "v": "b"})
        return db

    def test_failed_tmp_fsync_preserves_previous_state(self, tmp_path) -> None:
        faults = StorageFaultInjector()
        db = self.populated(tmp_path / "db", faults=faults)
        faults.fail_fsync(1)
        with pytest.raises(FaultInjectedError):
            db.checkpoint()
        db.close()
        reopened = Database(tmp_path / "db")
        assert table_state(reopened) == {1: {"id": 1, "v": "a"}, 2: {"id": 2, "v": "b"}}
        assert not (tmp_path / "db" / "snapshot.tmp").exists()
        reopened.close()

    def test_failed_rename_preserves_previous_state(self, tmp_path) -> None:
        faults = StorageFaultInjector()
        db = self.populated(tmp_path / "db", faults=faults)
        db.checkpoint()  # first snapshot succeeds
        db.insert("t", {"id": 3, "v": "c"})
        faults.fail_replace(1)
        with pytest.raises(FaultInjectedError):
            db.checkpoint()
        db.close()
        reopened = Database(tmp_path / "db")
        # Previous snapshot + post-snapshot WAL: nothing lost.
        assert table_state(reopened) == {
            1: {"id": 1, "v": "a"},
            2: {"id": 2, "v": "b"},
            3: {"id": 3, "v": "c"},
        }
        reopened.close()

    def test_stale_snapshot_tmp_is_ignored_and_cleaned(self, tmp_path) -> None:
        db = self.populated(tmp_path / "db")
        db.checkpoint()
        db.close()
        tmp_file = tmp_path / "db" / "snapshot.tmp"
        tmp_file.write_text('{"torn": ')
        reopened = Database(tmp_path / "db")
        assert table_state(reopened) == {1: {"id": 1, "v": "a"}, 2: {"id": 2, "v": "b"}}
        assert not tmp_file.exists()
        reopened.close()


class TestTornCommit:
    def test_short_write_tears_the_whole_transaction(self, tmp_path) -> None:
        faults = StorageFaultInjector()
        db = Database(tmp_path / "db", faults=faults)
        db.create_table("t", kv_schema())
        db.insert("t", {"id": 1, "v": "before"})
        faults.short_write(on_call=1, keep_bytes=25)  # tear the next (txn) frame
        with pytest.raises(FaultInjectedError):
            with db.transaction():
                db.insert("t", {"id": 2, "v": "x"})
                db.update("t", 1, {"v": "mutated"})
        db.close()
        reopened = Database(tmp_path / "db")
        # All-or-nothing: neither half of the transaction survived.
        assert table_state(reopened) == {1: {"id": 1, "v": "before"}}
        reopened.close()


class TestSnapshotCorruption:
    def test_checksum_mismatch_raises_corruption_error(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("t", kv_schema())
        db.insert("t", {"id": 1, "v": "a"})
        db.checkpoint()
        db.close()
        snapshot_path = path / "snapshot.json"
        payload = json.loads(snapshot_path.read_text())
        payload["tables"]["t"]["rows"][0]["v"] = "tampered"
        snapshot_path.write_text(json.dumps(payload))
        with pytest.raises(StorageCorruptionError):
            Database(path)

    def test_unparseable_snapshot_raises_corruption_error(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        db.create_table("t", kv_schema())
        db.checkpoint()
        db.close()
        (path / "snapshot.json").write_text('{"format": 2, "checksum": "00"')
        with pytest.raises(StorageCorruptionError):
            Database(path)


class TestSyncPolicies:
    @pytest.mark.parametrize("sync", ["always", "batch", "off"])
    def test_round_trip_under_every_policy(self, tmp_path, sync) -> None:
        db = Database(tmp_path / "db", sync=sync)
        db.create_table("t", kv_schema())
        with db.transaction():
            db.insert("t", {"id": 1, "v": "a"})
        db.checkpoint()
        db.insert("t", {"id": 2, "v": "b"})
        db.close()
        reopened = Database(tmp_path / "db", sync=sync)
        assert len(reopened.table("t")) == 2
        reopened.close()

    def test_unknown_policy_rejected(self, tmp_path) -> None:
        with pytest.raises(StorageError):
            Database(tmp_path / "db", sync="sometimes")

    def test_recovery_stats_counts_replay(self, tmp_path) -> None:
        db = Database(tmp_path / "db")
        db.create_table("t", kv_schema())
        db.insert("t", {"id": 1, "v": "a"})
        with db.transaction():
            db.insert("t", {"id": 2, "v": "b"})
            db.insert("t", {"id": 3, "v": "c"})
        db.close()
        reopened = Database(tmp_path / "db")
        stats = reopened.last_recovery
        assert not stats.snapshot_loaded
        assert stats.wal_transactions == 1
        assert stats.wal_records == 4  # create_table + insert + 2 txn records
        assert stats.torn_bytes_dropped == 0
        reopened.close()
