"""Tests for ordered indexes and SQL range queries."""

import pytest

from repro.core.errors import StorageError
from repro.storage.engine import Column, Database, Schema
from repro.storage.sql_executor import SqlSession, _conjunctive_ranges
from repro.storage.sql_parser import parse


def scores_schema() -> Schema:
    return Schema(
        columns=(
            Column("id", "int"),
            Column("score", "float", nullable=True),
            Column("name", "str"),
        ),
        primary_key="id",
    )


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table("t", scores_schema(), ordered_indexes=("score",))
    for i in range(20):
        database.insert("t", {"id": i, "score": float(i), "name": f"n{i}"})
    database.insert("t", {"id": 99, "score": None, "name": "nullrow"})
    return database


class TestEngineRangeSelect:
    def test_closed_range(self, db) -> None:
        rows = db.table("t").range_select("score", 3.0, 6.0)
        assert [row["id"] for row in rows] == [3, 4, 5, 6]

    def test_exclusive(self, db) -> None:
        rows = db.table("t").range_select(
            "score", 3.0, 6.0, include_low=False, include_high=False
        )
        assert [row["id"] for row in rows] == [4, 5]

    def test_open_ended(self, db) -> None:
        rows = db.table("t").range_select("score", low=17.0)
        assert [row["id"] for row in rows] == [17, 18, 19]

    def test_nulls_never_in_range(self, db) -> None:
        rows = db.table("t").range_select("score")
        assert 99 not in [row["id"] for row in rows]

    def test_maintained_on_update_delete(self, db) -> None:
        db.update("t", 5, {"score": 100.0})
        db.delete("t", 6)
        rows = db.table("t").range_select("score", 4.0, 7.0)
        assert [row["id"] for row in rows] == [4, 7]
        top = db.table("t").range_select("score", low=99.0)
        assert [row["id"] for row in top] == [5]

    def test_missing_ordered_index_raises(self, db) -> None:
        with pytest.raises(StorageError):
            db.table("t").range_select("name", "a", "z")

    def test_index_built_over_existing_rows(self) -> None:
        database = Database()
        database.create_table("t", scores_schema())
        for i in range(5):
            database.insert("t", {"id": i, "score": float(i), "name": "x"})
        database.create_ordered_index("t", "score")
        rows = database.table("t").range_select("score", 1.0, 3.0)
        assert [row["id"] for row in rows] == [1, 2, 3]


class TestSqlRangeQueries:
    @pytest.fixture()
    def session(self) -> SqlSession:
        s = SqlSession()
        s.execute("CREATE TABLE t (id INT, score FLOAT, name TEXT, PRIMARY KEY (id))")
        s.execute("CREATE ORDERED INDEX ON t (score)")
        s.execute(
            "INSERT INTO t (id, score, name) VALUES "
            + ", ".join(f"({i}, {float(i)}, 'n{i}')" for i in range(20))
        )
        return s

    def test_range_where(self, session) -> None:
        rows = session.query("SELECT id FROM t WHERE score >= 5.0 AND score < 8.0")
        assert [row["id"] for row in rows] == [5, 6, 7]

    def test_range_with_extra_predicate(self, session) -> None:
        rows = session.query(
            "SELECT id FROM t WHERE score >= 5.0 AND score < 12.0 AND name = 'n7'"
        )
        assert [row["id"] for row in rows] == [7]

    def test_flipped_literal_side(self, session) -> None:
        rows = session.query("SELECT id FROM t WHERE 15.0 <= score")
        assert [row["id"] for row in rows] == list(range(15, 20))

    def test_or_does_not_use_range_path_but_is_correct(self, session) -> None:
        rows = session.query("SELECT id FROM t WHERE score < 1.0 OR score > 18.0")
        assert sorted(row["id"] for row in rows) == [0, 19]

    def test_create_ordered_index_survives_restart(self, tmp_path) -> None:
        from repro.storage.sql_executor import execute

        path = tmp_path / "db"
        database = Database(path)
        execute(database, "CREATE TABLE t (id INT, v FLOAT, PRIMARY KEY (id))")
        execute(database, "CREATE ORDERED INDEX ON t (v)")
        execute(database, "INSERT INTO t (id, v) VALUES (1, 1.5), (2, 2.5)")
        database.close()
        reopened = Database(path)
        assert reopened.table("t").ordered_indexes() == ["v"]
        rows = reopened.table("t").range_select("v", 2.0, 3.0)
        assert [row["id"] for row in rows] == [2]
        reopened.close()

    def test_ordered_keyword_misuse_rejected(self) -> None:
        from repro.storage.sql_lexer import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            parse("CREATE ORDERED TABLE t (id INT, PRIMARY KEY (id))")


class TestOrderByViaIndex:
    @pytest.fixture()
    def session(self) -> SqlSession:
        s = SqlSession()
        s.execute("CREATE TABLE t (id INT, score FLOAT NOT NULL, PRIMARY KEY (id))")
        s.execute("CREATE ORDERED INDEX ON t (score)")
        s.execute(
            "INSERT INTO t (id, score) VALUES "
            + ", ".join(f"({i}, {float((i * 37) % 101)})" for i in range(40))
        )
        return s

    def test_order_by_ascending(self, session) -> None:
        rows = session.query("SELECT score FROM t ORDER BY score")
        values = [row["score"] for row in rows]
        assert values == sorted(values)
        assert len(values) == 40

    def test_order_by_descending_with_limit(self, session) -> None:
        rows = session.query("SELECT score FROM t ORDER BY score DESC LIMIT 3")
        values = [row["score"] for row in rows]
        assert values == sorted(values, reverse=True)[:3]
        all_values = [
            row["score"] for row in session.query("SELECT score FROM t")
        ]
        assert values == sorted(all_values, reverse=True)[:3]

    def test_order_by_with_where_still_correct(self, session) -> None:
        rows = session.query(
            "SELECT score FROM t WHERE score >= 50.0 ORDER BY score"
        )
        values = [row["score"] for row in rows]
        assert values == sorted(values)
        assert all(value >= 50.0 for value in values)

    def test_nullable_column_keeps_nulls(self) -> None:
        s = SqlSession()
        s.execute("CREATE TABLE t (id INT, v FLOAT, PRIMARY KEY (id))")
        s.execute("CREATE ORDERED INDEX ON t (v)")
        s.execute("INSERT INTO t (id, v) VALUES (1, 2.0), (2, NULL), (3, 1.0)")
        rows = s.query("SELECT id FROM t ORDER BY v")
        # NULL row must not vanish (nullable columns skip the fast path).
        assert sorted(row["id"] for row in rows) == [1, 2, 3]


class TestRangeExtraction:
    def test_bounds_combined(self) -> None:
        statement = parse("SELECT * FROM t WHERE score >= 2.0 AND score < 9.0")
        bounds = _conjunctive_ranges(statement.where)
        assert bounds["score"] == (2.0, 9.0, True, False)

    def test_tightest_bound_wins(self) -> None:
        statement = parse("SELECT * FROM t WHERE score > 2.0 AND score > 5.0")
        bounds = _conjunctive_ranges(statement.where)
        assert bounds["score"] == (5.0, None, False, True)

    def test_or_not_extracted(self) -> None:
        statement = parse("SELECT * FROM t WHERE score > 2.0 OR score < 1.0")
        assert _conjunctive_ranges(statement.where) == {}

    def test_null_literal_ignored(self) -> None:
        statement = parse("SELECT * FROM t WHERE score > NULL")
        assert _conjunctive_ranges(statement.where) == {}
