"""Tests for the SQL dialect: lexer, parser, executor."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import DuplicateKeyError, SchemaError, StorageError
from repro.storage.engine import Database
from repro.storage.sql_ast import (
    BooleanOp,
    Comparison,
    CreateTable,
    Insert,
    Select,
)
from repro.storage.sql_executor import SqlSession, execute
from repro.storage.sql_lexer import SqlSyntaxError, tokenize
from repro.storage.sql_parser import parse


@pytest.fixture()
def session() -> SqlSession:
    s = SqlSession()
    s.execute(
        "CREATE TABLE objects ("
        " object_id INT NOT NULL,"
        " title TEXT NOT NULL,"
        " domain TEXT,"
        " score FLOAT,"
        " active BOOL,"
        " PRIMARY KEY (object_id))"
    )
    s.execute("CREATE INDEX ON objects (domain)")
    s.execute(
        "INSERT INTO objects (object_id, title, domain, score, active) VALUES"
        " (1, 'planar graph', 'planetmath', 0.9, TRUE),"
        " (2, 'graph', 'planetmath', 0.8, TRUE),"
        " (3, 'graph', 'mathworld', 0.7, FALSE),"
        " (4, 'even number', 'planetmath', NULL, TRUE)"
    )
    return s


class TestLexer:
    def test_keywords_case_insensitive(self) -> None:
        kinds = [t.kind for t in tokenize("select FROM Where")]
        assert kinds == ["KEYWORD"] * 3

    def test_string_escaping(self) -> None:
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self) -> None:
        tokens = tokenize("42 -7 3.14")
        assert [(t.kind, t.value) for t in tokens] == [
            ("INT", "42"), ("INT", "-7"), ("FLOAT", "3.14"),
        ]

    def test_operators(self) -> None:
        values = [t.value for t in tokenize("= != <> <= >= < >")]
        assert values == ["=", "!=", "!=", "<=", ">=", "<", ">"]

    def test_comments_skipped(self) -> None:
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.kind for t in tokens] == ["KEYWORD", "INT"]

    def test_unterminated_string(self) -> None:
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self) -> None:
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestParser:
    def test_create_table_ast(self) -> None:
        statement = parse(
            "CREATE TABLE t (id INT NOT NULL, name TEXT, PRIMARY KEY (id))"
        )
        assert isinstance(statement, CreateTable)
        assert statement.primary_key == "id"
        assert statement.columns[0].nullable is False
        assert statement.columns[1].type == "str"

    def test_select_ast(self) -> None:
        statement = parse(
            "SELECT title, domain FROM objects WHERE score > 0.5 AND domain = 'x' "
            "ORDER BY title DESC LIMIT 3;"
        )
        assert isinstance(statement, Select)
        assert statement.columns == ("title", "domain")
        assert isinstance(statement.where, BooleanOp)
        assert statement.order_by.descending
        assert statement.limit == 3

    def test_insert_multiple_rows(self) -> None:
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, Insert)
        assert statement.rows == ((1, "x"), (2, "y"))

    def test_where_precedence_and_binds_tighter(self) -> None:
        statement = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(statement.where, BooleanOp)
        assert statement.where.operator == "OR"
        assert isinstance(statement.where.right, BooleanOp)
        assert statement.where.right.operator == "AND"

    def test_parentheses_override(self) -> None:
        statement = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert statement.where.operator == "AND"

    def test_not(self) -> None:
        statement = parse("SELECT * FROM t WHERE NOT a = 1")
        from repro.storage.sql_ast import NotOp

        assert isinstance(statement.where, NotOp)

    def test_type_keyword_as_column_name(self) -> None:
        statement = parse("SELECT text FROM t")
        assert statement.columns == ("text",)

    def test_arity_mismatch_rejected(self) -> None:
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_missing_primary_key_rejected(self) -> None:
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TABLE t (id INT)")

    def test_trailing_garbage_rejected(self) -> None:
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t nonsense nonsense")

    def test_comparison_requires_operand(self) -> None:
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t WHERE a =")


class TestExecutorSelect:
    def test_select_all(self, session) -> None:
        rows = session.query("SELECT * FROM objects")
        assert len(rows) == 4

    def test_select_projection(self, session) -> None:
        rows = session.query("SELECT title FROM objects WHERE object_id = 1")
        assert rows == [{"title": "planar graph"}]

    def test_where_equality_uses_pk(self, session) -> None:
        rows = session.query("SELECT * FROM objects WHERE object_id = 3")
        assert rows[0]["domain"] == "mathworld"

    def test_where_indexed_column(self, session) -> None:
        rows = session.query("SELECT * FROM objects WHERE domain = 'planetmath'")
        assert {row["object_id"] for row in rows} == {1, 2, 4}

    def test_where_and_or(self, session) -> None:
        rows = session.query(
            "SELECT * FROM objects WHERE domain = 'planetmath' AND "
            "(title = 'graph' OR object_id = 1)"
        )
        assert {row["object_id"] for row in rows} == {1, 2}

    def test_where_not(self, session) -> None:
        rows = session.query("SELECT * FROM objects WHERE NOT active = TRUE")
        assert [row["object_id"] for row in rows] == [3]

    def test_comparisons(self, session) -> None:
        rows = session.query("SELECT * FROM objects WHERE score >= 0.8")
        assert {row["object_id"] for row in rows} == {1, 2}

    def test_null_comparisons(self, session) -> None:
        rows = session.query("SELECT * FROM objects WHERE score = NULL")
        assert [row["object_id"] for row in rows] == [4]
        rows = session.query("SELECT * FROM objects WHERE score != NULL")
        assert {row["object_id"] for row in rows} == {1, 2, 3}
        # NULL never satisfies an inequality.
        rows = session.query("SELECT * FROM objects WHERE score < 10.0")
        assert 4 not in {row["object_id"] for row in rows}

    def test_order_by_and_limit(self, session) -> None:
        rows = session.query(
            "SELECT object_id FROM objects ORDER BY object_id DESC LIMIT 2"
        )
        assert [row["object_id"] for row in rows] == [4, 3]

    def test_count(self, session) -> None:
        result = session.execute("SELECT COUNT(*) FROM objects WHERE active = TRUE")
        assert result.scalar == 3

    def test_unknown_column_raises(self, session) -> None:
        with pytest.raises(SchemaError):
            session.query("SELECT nope FROM objects")
        with pytest.raises(SchemaError):
            session.query("SELECT * FROM objects WHERE nope = 1")

    def test_unknown_table_raises(self, session) -> None:
        with pytest.raises(StorageError):
            session.query("SELECT * FROM missing")


class TestExecutorMutations:
    def test_update(self, session) -> None:
        result = session.execute(
            "UPDATE objects SET domain = 'dlmf' WHERE title = 'graph'"
        )
        assert result.affected == 2
        rows = session.query("SELECT * FROM objects WHERE domain = 'dlmf'")
        assert len(rows) == 2

    def test_update_all_rows(self, session) -> None:
        result = session.execute("UPDATE objects SET active = FALSE")
        assert result.affected == 4

    def test_delete(self, session) -> None:
        result = session.execute("DELETE FROM objects WHERE domain = 'mathworld'")
        assert result.affected == 1
        assert session.execute("SELECT COUNT(*) FROM objects").scalar == 3

    def test_insert_duplicate_pk(self, session) -> None:
        with pytest.raises(DuplicateKeyError):
            session.execute(
                "INSERT INTO objects (object_id, title) VALUES (1, 'dup')"
            )

    def test_insert_respects_schema(self, session) -> None:
        with pytest.raises(SchemaError):
            session.execute(
                "INSERT INTO objects (object_id, title) VALUES (9, 42)"
            )

    def test_drop_table(self, session) -> None:
        session.execute("DROP TABLE objects")
        with pytest.raises(StorageError):
            session.query("SELECT * FROM objects")
        session.execute("DROP TABLE IF EXISTS objects")  # no error

    def test_create_if_not_exists(self, session) -> None:
        session.execute(
            "CREATE TABLE IF NOT EXISTS objects (x INT, PRIMARY KEY (x))"
        )
        # The original table with 4 rows survives.
        assert session.execute("SELECT COUNT(*) FROM objects").scalar == 4


class TestPersistence:
    def test_sql_mutations_survive_restart(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        execute(db, "CREATE TABLE t (id INT, v TEXT, PRIMARY KEY (id))")
        execute(db, "INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')")
        execute(db, "UPDATE t SET v = 'z' WHERE id = 2")
        execute(db, "DELETE FROM t WHERE id = 1")
        db.close()
        reopened = Database(path)
        rows = execute(reopened, "SELECT * FROM t").rows
        assert rows == [{"id": 2, "v": "z"}]
        reopened.close()

    def test_drop_table_replayed(self, tmp_path) -> None:
        path = tmp_path / "db"
        db = Database(path)
        execute(db, "CREATE TABLE t (id INT, PRIMARY KEY (id))")
        execute(db, "DROP TABLE t")
        db.close()
        reopened = Database(path)
        assert not reopened.has_table("t")
        reopened.close()


@given(st.text(alphabet="abcxyz' ()=,", max_size=30))
def test_lexer_never_crashes_uncontrolled(text: str) -> None:
    """Arbitrary garbage either tokenizes or raises SqlSyntaxError."""
    try:
        tokenize(text)
    except SqlSyntaxError:
        pass


@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.sampled_from(["a", "b", "c"])),
        max_size=20,
        unique_by=lambda pair: pair[0],
    )
)
def test_sql_roundtrip_matches_native_api(rows: list[tuple[int, str]]) -> None:
    """Inserting via SQL and via the native API yield identical tables."""
    sql_db = Database()
    execute(sql_db, "CREATE TABLE t (id INT, v TEXT, PRIMARY KEY (id))")
    native_db = Database()
    from repro.storage.engine import Column, Schema

    native_db.create_table(
        "t", Schema((Column("id", "int"), Column("v", "str")), "id")
    )
    for key, value in rows:
        execute(sql_db, f"INSERT INTO t (id, v) VALUES ({key}, '{value}')")
        native_db.insert("t", {"id": key, "v": value})
    sql_rows = sorted(execute(sql_db, "SELECT * FROM t").rows, key=lambda r: r["id"])
    native_rows = sorted(native_db.table("t").scan(), key=lambda r: r["id"])
    assert sql_rows == native_rows
