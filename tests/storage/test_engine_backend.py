"""EngineBackend journal atomicity (REP102 regression).

``record_rendering`` used to issue a bare ``upsert`` — one unframed WAL
record outside any transaction.  All journal methods must commit as a
single framed ``txn`` record so a crash can never tear them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.models import CorpusObject
from repro.persistence import open_storage


def _wal_ops(data_dir: Path) -> list[dict]:
    ops = []
    for line in (data_dir / "wal.jsonl").read_text().splitlines():
        # Frame format: "<length> <crc> <json payload>".
        ops.append(json.loads(line.split(" ", 2)[2]))
    return ops


def _obj(object_id: int = 1) -> CorpusObject:
    return CorpusObject(
        object_id=object_id,
        title=f"entry {object_id}",
        defines=[f"term{object_id}"],
        text=f"body {object_id}",
    )


class TestJournalAtomicity:
    def test_record_rendering_commits_one_txn_record(self, tmp_path) -> None:
        storage = open_storage("engine", tmp_path)
        try:
            before = len(_wal_ops(tmp_path))
            storage.record_rendering(7, "html", "<p>x</p>")
        finally:
            storage.close()
        appended = _wal_ops(tmp_path)[before:]
        assert [op["op"] for op in appended] == ["txn"]
        inner = appended[0]["records"]
        assert {r["op"] for r in inner} <= {"insert", "update", "upsert"}
        assert inner[0]["table"] == "renderings"

    def test_every_journal_method_appends_only_txn_records(self, tmp_path) -> None:
        storage = open_storage("engine", tmp_path)
        try:
            before = len(_wal_ops(tmp_path))
            storage.record_add(_obj(1), invalidated=(), labels=(("term", "1"),))
            storage.record_update(_obj(1), invalidated=(1,), labels=())
            storage.record_rendering(1, "html", "<p>1</p>")
            storage.record_remove(1, invalidated=())
            storage.record_cache_clear()
        finally:
            storage.close()
        appended = _wal_ops(tmp_path)[before:]
        assert appended, "journal methods must write WAL records"
        assert {op["op"] for op in appended} == {"txn"}

    def test_rendering_survives_restart(self, tmp_path) -> None:
        storage = open_storage("engine", tmp_path)
        try:
            storage.record_add(_obj(3), invalidated=())
            storage.record_rendering(3, "html", "<p>restored</p>")
        finally:
            storage.close()
        reopened = open_storage("engine", tmp_path)
        try:
            snapshot = reopened.load()
        finally:
            reopened.close()
        renderings = {
            (r.object_id, r.fmt): r.body for r in snapshot.renderings
        }
        assert renderings[(3, "html")] == "<p>restored</p>"
