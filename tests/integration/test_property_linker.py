"""Property-based tests of linker-level invariants on random corpora."""

from hypothesis import given, settings, strategies as st

from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.core.morphology import canonicalize_phrase
from repro.core.render import validate_spans
from repro.ontology.msc import build_small_msc

_LABEL_WORDS = ["alpha", "beta", "gamma", "delta", "omega", "sigma"]
_FILLER = ["we", "show", "that", "the", "holds", "now"]
_CLASSES = ["05C10", "05C40", "05C99", "03E20", "11A05", "60A05"]

label_st = st.lists(
    st.sampled_from(_LABEL_WORDS), min_size=1, max_size=3
).map(" ".join)

object_st = st.builds(
    lambda oid, labels, classes: CorpusObject(
        object_id=oid,
        title=labels[0],
        defines=labels,
        classes=classes,
        text="",
    ),
    oid=st.integers(1, 10_000),
    labels=st.lists(label_st, min_size=1, max_size=3, unique=True),
    classes=st.lists(st.sampled_from(_CLASSES), min_size=0, max_size=2),
)

corpus_st = st.lists(
    object_st, min_size=1, max_size=8, unique_by=lambda o: o.object_id
)

text_st = st.lists(
    st.one_of(st.sampled_from(_FILLER), label_st), min_size=0, max_size=25
).map(" ".join)


def build(objects: list[CorpusObject]) -> NNexus:
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(objects)
    return linker


@settings(max_examples=60, deadline=None)
@given(corpus_st, text_st, st.sampled_from(_CLASSES))
def test_every_link_target_defines_its_phrase(objects, text, source_class) -> None:
    linker = build(objects)
    document = linker.link_text(text, source_classes=[source_class])
    for link in document.links:
        canonical = canonicalize_phrase(link.source_phrase)
        owners = linker.concept_map.owners(" ".join(canonical))
        assert link.target_id in owners


@settings(max_examples=60, deadline=None)
@given(corpus_st, text_st)
def test_spans_always_valid_and_disjoint(objects, text) -> None:
    linker = build(objects)
    document = linker.link_text(text)
    validate_spans(document)
    for link in document.links:
        assert document.source_text[link.char_start : link.char_end] == (
            link.source_phrase
        )


@settings(max_examples=60, deadline=None)
@given(corpus_st, text_st)
def test_first_occurrence_rule_gives_unique_canonicals(objects, text) -> None:
    linker = build(objects)
    document = linker.link_text(text)
    canonicals = [canonicalize_phrase(l.source_phrase) for l in document.links]
    assert len(set(canonicals)) == len(canonicals)


@settings(max_examples=40, deadline=None)
@given(corpus_st)
def test_stored_entries_never_self_link(objects) -> None:
    linker = build(objects)
    # Give each object a text that mentions every label in the corpus.
    all_labels = " . ".join(
        " ".join(words)
        for obj in objects
        for words in [canonicalize_phrase(p) for p in obj.concept_phrases()]
    )
    for obj in objects:
        linker.update_object(
            CorpusObject(
                object_id=obj.object_id,
                title=obj.title,
                defines=list(obj.defines),
                classes=list(obj.classes),
                text=all_labels,
            )
        )
    for obj in objects:
        document = linker.link_object(obj.object_id)
        assert all(link.target_id != obj.object_id for link in document.links)


@settings(max_examples=40, deadline=None)
@given(corpus_st, text_st)
def test_forbid_all_policy_silences_target(objects, text) -> None:
    linker = build(objects)
    victim = objects[0].object_id
    linker.set_linking_policy(victim, "forbid *\n")
    document = linker.link_text(text, source_classes=["05C10"])
    assert all(link.target_id != victim for link in document.links)


@settings(max_examples=40, deadline=None)
@given(corpus_st, text_st)
def test_removal_is_complete(objects, text) -> None:
    linker = build(objects)
    for obj in objects:
        linker.remove_object(obj.object_id)
    assert len(linker) == 0
    assert linker.concept_count() == 0
    document = linker.link_text(text)
    assert document.links == []
