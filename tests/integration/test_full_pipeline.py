"""Integration tests exercising several subsystems together."""

from repro.core.linker import NNexus
from repro.core.morphology import canonicalize_phrase
from repro.core.render import validate_spans
from repro.corpus.generator import GeneratorParams, generate_corpus
from repro.corpus.planetmath_sample import sample_corpus
from repro.eval.experiments import build_linker
from repro.eval.metrics import score_corpus
from repro.ontology.msc import build_small_msc
from repro.ontology.owl import scheme_from_owl, scheme_to_owl

import pytest


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(GeneratorParams(n_entries=250, seed=77))


class TestEndToEndQuality:
    def test_full_configuration_quality(self, corpus) -> None:
        linker = build_linker(corpus, with_policies=True)
        report = score_corpus(linker, corpus.objects, corpus.ground_truth)
        assert report.recall == 1.0
        assert report.precision > 0.85

    def test_all_rendered_documents_have_valid_spans(self, corpus) -> None:
        linker = build_linker(corpus)
        for obj in corpus.objects[:50]:
            validate_spans(linker.link_object(obj.object_id))


class TestDynamicCorpusLifecycle:
    """Grow, shrink and policy-tune a corpus while linking stays correct."""

    def test_incremental_build_equals_bulk_build(self) -> None:
        objects = sample_corpus()
        bulk = NNexus(scheme=build_small_msc())
        bulk.add_objects(objects)
        incremental = NNexus(scheme=build_small_msc())
        for obj in objects:
            incremental.add_object(obj)
            incremental.relink_invalidated()
        for object_id in bulk.object_ids():
            a = bulk.link_object(object_id)
            b = incremental.link_object(object_id)
            assert [l.target_id for l in a.links] == [l.target_id for l in b.links]

    def test_remove_then_re_add_restores_linking(self) -> None:
        linker = NNexus(scheme=build_small_msc())
        objects = {obj.object_id: obj for obj in sample_corpus()}
        linker.add_objects(objects.values())
        before = [l.target_id for l in linker.link_object(1).links]
        removed = objects[2]
        linker.remove_object(2)
        linker.add_object(removed)
        after = [l.target_id for l in linker.link_object(1).links]
        assert before == after

    def test_growing_corpus_reaches_old_entries(self) -> None:
        linker = NNexus(scheme=build_small_msc())
        linker.add_objects(sample_corpus())
        rendered = {oid: linker.render_object(oid) for oid in linker.object_ids()}
        from repro.core.models import CorpusObject

        invalidated = linker.add_object(
            CorpusObject(999, "subgraph", defines=["subgraph", "subgraphs"],
                         classes=["05C99"], text="A graph inside a graph.")
        )
        # Entries whose text says "subgraphs" must be invalidated...
        assert any("subgraph" in linker.get_object(i).text for i in invalidated)
        refreshed = linker.relink_invalidated()
        assert any("#object-999" in html for html in refreshed.values())
        del rendered


class TestSchemeInterchange:
    def test_owl_round_tripped_scheme_steers_identically(self, corpus) -> None:
        rebuilt_scheme = scheme_from_owl(scheme_to_owl(corpus.scheme))
        original = NNexus(scheme=corpus.scheme)
        round_tripped = NNexus(scheme=rebuilt_scheme)
        sample = corpus.objects[:30]
        original.add_objects(sample)
        round_tripped.add_objects(sample)
        for obj in sample:
            a = original.link_object(obj.object_id)
            b = round_tripped.link_object(obj.object_id)
            assert [l.target_id for l in a.links] == [l.target_id for l in b.links]


class TestScoreConsistency:
    def test_perfect_linker_scores_perfectly(self, corpus) -> None:
        """Score the ground truth against itself via a synthetic 'oracle'."""

        class Oracle:
            def link_object(self, object_id: int):
                from repro.core.models import Link, LinkedDocument

                links = [
                    Link(inv.phrase, inv.target_id, "d", 0, 1)
                    for inv in corpus.ground_truth[object_id]
                    if inv.target_id is not None
                ]
                return LinkedDocument(source_text="", links=links)

        report = score_corpus(Oracle(), corpus.objects, corpus.ground_truth)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.mislinks == 0

    def test_linker_errors_only_on_hard_cases(self, corpus) -> None:
        linker = build_linker(corpus, with_policies=True)
        report = score_corpus(linker, corpus.objects, corpus.ground_truth)
        hard_kinds = {"homonym", "homonym-cross", "common-english", "common-math"}
        by_entry = {q.object_id: q for q in report.per_entry}
        for object_id, quality in by_entry.items():
            if quality.mislinks == 0:
                continue
            kinds = {inv.kind for inv in corpus.ground_truth[object_id]}
            assert kinds & hard_kinds, (
                f"entry {object_id} mislinked without any hard invocation"
            )

    def test_canonical_phrases_consistent_between_gt_and_linker(self, corpus) -> None:
        linker = build_linker(corpus)
        for obj in corpus.objects[:40]:
            document = linker.link_object(obj.object_id)
            expected = {inv.canonical for inv in corpus.ground_truth[obj.object_id]}
            for link in document.links:
                assert canonicalize_phrase(link.source_phrase) in expected
