"""Tests for the top-level CLI (python -m repro ...)."""

import json

import pytest

from repro.__main__ import main
from repro.corpus.loader import save_corpus
from repro.corpus.planetmath_sample import sample_corpus


@pytest.fixture()
def corpus_file(tmp_path):
    path = tmp_path / "corpus.json"
    save_corpus(sample_corpus(), path)
    return path


class TestLinkCommand:
    def test_links_file(self, tmp_path, corpus_file, capsys) -> None:
        note = tmp_path / "note.txt"
        note.write_text("Every planar graph has connected components.")
        code = main([
            "link", str(note), "--corpus", str(corpus_file),
            "--classes", "05C10", "--format", "annotations",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "planar graph[->2]" in out

    def test_default_sample_corpus(self, tmp_path, capsys) -> None:
        note = tmp_path / "note.txt"
        note.write_text("a tree is bipartite")
        assert main(["link", str(note), "--classes", "05C05"]) == 0
        assert "tree" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_summary_json(self, corpus_file, tmp_path, capsys) -> None:
        out_dir = tmp_path / "rendered"
        code = main([
            "batch", "--corpus", str(corpus_file), "--format", "markdown",
            "--out", str(out_dir),
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["entries"] == 30
        assert (out_dir / "object-1.md").exists()


MINI_DUMP = """<mediawiki>
  <page><title>Planar graph</title>
    <revision><text>A '''planar graph''' embeds in the [[plane]].
[[Category:Graph theory]]</text></revision></page>
  <page><title>Plane</title>
    <revision><text>Flat space. [[Category:Geometry]]</text></revision></page>
  <page><title>Planar graphs</title>
    <revision><text>#REDIRECT [[Planar graph]]</text></revision></page>
</mediawiki>
"""


class TestImportWiki:
    def test_import(self, tmp_path, capsys) -> None:
        dump = tmp_path / "dump.xml"
        dump.write_text(MINI_DUMP)
        category_map = tmp_path / "cats.json"
        category_map.write_text(json.dumps({"Graph theory": "05C", "Geometry": "51M"}))
        out = tmp_path / "wiki.json"
        code = main([
            "import-wiki", str(dump), "--out", str(out),
            "--category-map", str(category_map),
        ])
        assert code == 0
        from repro.corpus.loader import load_corpus

        objects = load_corpus(out)
        assert len(objects) == 2  # the redirect became a synonym
        by_title = {obj.title: obj for obj in objects}
        assert by_title["Planar graph"].synonyms == ["Planar graphs"]
        assert by_title["Plane"].classes == ["51M"]


class TestSiteCommand:
    def test_site_built(self, corpus_file, tmp_path, capsys) -> None:
        out = tmp_path / "site"
        code = main(["site", "--corpus", str(corpus_file), "--out", str(out),
                     "--title", "CLI Site"])
        assert code == 0
        assert (out / "index.html").exists()
        assert "CLI Site" in (out / "index.html").read_text()
        assert "30 entry pages" in capsys.readouterr().out


class TestKeywordsCommand:
    def test_keywords(self, tmp_path, capsys) -> None:
        note = tmp_path / "note.txt"
        note.write_text("A Markov chain has a transition matrix.")
        assert main(["keywords", str(note), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "markov chain" in out or "transition matrix" in out


class TestSuggestPoliciesCommand:
    def test_suggest_on_sample(self, capsys) -> None:
        assert main(["suggest-policies", "--min-usages", "3"]) == 0
        capsys.readouterr()  # output shape is free-form; exit code matters


class TestEvalForwarding:
    def test_eval_subcommand(self, capsys) -> None:
        assert main(["eval", "table1", "--entries", "120"]) == 0
        assert "Table 1" in capsys.readouterr().out
