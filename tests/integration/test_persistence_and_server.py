"""Integration: storage engine + linker + server, the full deployment."""

from repro.corpus.generator import GeneratorParams, generate_corpus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.server.client import NNexusClient
from repro.server.server import serve_forever
from repro.storage.tables import NNexusStore


class TestStoreBackedServer:
    def test_persist_restart_serve(self, tmp_path) -> None:
        # Phase 1: ingest a corpus and persist it.
        path = tmp_path / "db"
        store = NNexusStore(path)
        store.save_corpus(sample_corpus())
        store.checkpoint()
        store.close()

        # Phase 2: "restart" — rebuild the linker from disk and serve it.
        reopened = NNexusStore(path)
        linker = reopened.build_linker(scheme=build_small_msc())
        server = serve_forever(linker)
        try:
            with NNexusClient(*server.address) as client:
                assert client.describe()["objects"] == 30
                body, links = client.link_entry(
                    "every planar graph has connected components",
                    classes=["05C10"],
                )
                targets = {l["phrase"]: l["target"] for l in links}
                assert targets["planar graph"] == "2"
                assert targets["connected components"] == "4"
        finally:
            server.shutdown()
            server.server_close()
            reopened.close()

    def test_synthetic_corpus_via_store(self, tmp_path) -> None:
        corpus = generate_corpus(GeneratorParams(n_entries=60, seed=4))
        store = NNexusStore(tmp_path / "db")
        store.save_corpus(corpus.objects)
        linker = store.build_linker(scheme=corpus.scheme)
        assert len(linker) == 60
        # Spot check: linking a stored object still finds its invocations.
        first = corpus.objects[0]
        document = linker.link_object(first.object_id)
        defined = [
            inv for inv in corpus.ground_truth[first.object_id]
            if inv.target_id is not None
        ]
        assert document.link_count >= len(defined)
        store.close()

    def test_server_mutations_can_be_written_back(self, tmp_path) -> None:
        from repro.core.models import CorpusObject

        store = NNexusStore(tmp_path / "db")
        store.save_corpus(sample_corpus())
        linker = store.build_linker(scheme=build_small_msc())
        server = serve_forever(linker)
        try:
            with NNexusClient(*server.address) as client:
                client.add_object(
                    CorpusObject(777, "girth", defines=["girth"],
                                 classes=["05C38"], text="Shortest cycle length.")
                )
            # Application-level write-back: persist what the linker holds.
            store.save_object(linker.get_object(777))
            assert store.load_object(777).title == "girth"
        finally:
            server.shutdown()
            server.server_close()
            store.close()
