"""Tests for the embedded MSC hierarchy."""

from repro.ontology.msc import MSC_SECTIONS, MSC_TOP_LEVEL, build_msc, build_small_msc


class TestSmallMsc:
    def test_paper_example_codes_present(self) -> None:
        scheme = build_small_msc()
        for code in ("05C40", "05C99", "03E20", "05C10", "11A05", "51M05"):
            assert code in scheme

    def test_structure_three_levels(self) -> None:
        scheme = build_small_msc()
        assert scheme.node("05C40").parent == "05C"
        assert scheme.node("05C").parent == "05"
        assert scheme.node("05").parent == "__root__"
        assert scheme.height() == 3

    def test_all_top_levels_present(self) -> None:
        scheme = build_small_msc()
        for code, __ in MSC_TOP_LEVEL:
            assert code in scheme

    def test_titles_attached(self) -> None:
        scheme = build_small_msc()
        assert scheme.node("05C").title == "Graph theory"
        assert scheme.node("05C40").title == "Connectivity"


class TestDensifiedMsc:
    def test_leaves_per_section_honored(self) -> None:
        scheme = build_msc(leaves_per_section=10)
        for __, section, ___ in MSC_SECTIONS:
            assert len(scheme.children_of(section)) >= 10

    def test_generated_codes_follow_msc_syntax(self) -> None:
        scheme = build_msc(leaves_per_section=5)
        for leaf in scheme.children_of("60G"):
            assert leaf.startswith("60G")
            assert len(leaf) == 5

    def test_zero_densification_is_small_msc(self) -> None:
        assert len(build_msc(leaves_per_section=0)) == len(build_small_msc())

    def test_curated_leaves_not_clobbered(self) -> None:
        scheme = build_msc(leaves_per_section=25)
        assert scheme.node("05C40").title == "Connectivity"

    def test_deterministic(self) -> None:
        assert sorted(build_msc(8).codes()) == sorted(build_msc(8).codes())
