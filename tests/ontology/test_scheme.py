"""Tests for classification schemes."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SchemeParseError, UnknownClassError
from repro.ontology.scheme import ROOT_CODE, ClassificationScheme, normalize_code


def tiny() -> ClassificationScheme:
    scheme = ClassificationScheme("t")
    scheme.add_class("05", "Combinatorics")
    scheme.add_class("05C", "Graph theory", parent="05")
    scheme.add_class("05C40", "Connectivity", parent="05C")
    scheme.add_class("03", "Logic")
    return scheme


class TestNormalizeCode:
    def test_upper_and_strip(self) -> None:
        assert normalize_code(" 05c40 ") == "05C40"

    def test_xx_suffixes_stripped(self) -> None:
        assert normalize_code("05Cxx") == "05C"
        assert normalize_code("05-XX") == "05"

    def test_pure_xx_not_emptied(self) -> None:
        assert normalize_code("XX") == "XX"


class TestConstruction:
    def test_depths(self) -> None:
        scheme = tiny()
        assert scheme.node("05").depth == 1
        assert scheme.node("05C").depth == 2
        assert scheme.node("05C40").depth == 3
        assert scheme.height() == 3

    def test_duplicate_code_rejected(self) -> None:
        scheme = tiny()
        with pytest.raises(SchemeParseError):
            scheme.add_class("05")

    def test_unknown_parent_rejected(self) -> None:
        with pytest.raises(UnknownClassError):
            tiny().add_class("99Z", parent="99")

    def test_empty_code_rejected(self) -> None:
        with pytest.raises(SchemeParseError):
            tiny().add_class("   ")

    def test_from_edges(self) -> None:
        scheme = ClassificationScheme.from_edges(
            "e", [(None, "a", "A"), ("a", "b", "B")]
        )
        assert scheme.parent_of("b") == "A"


class TestNavigation:
    def test_path_to_root(self) -> None:
        assert tiny().path_to_root("05C40") == ["05C40", "05C", "05", ROOT_CODE]

    def test_children_and_leaves(self) -> None:
        scheme = tiny()
        assert scheme.children_of("05") == ["05C"]
        assert set(scheme.leaves()) == {"05C40", "03"}

    def test_lca(self) -> None:
        scheme = tiny()
        assert scheme.lowest_common_ancestor("05C40", "05C") == "05C"
        assert scheme.lowest_common_ancestor("05C40", "03") == ROOT_CODE

    def test_contains_and_len(self) -> None:
        scheme = tiny()
        assert "05c40" in scheme
        assert "99" not in scheme
        assert len(scheme) == 4

    def test_edges_carry_depth(self) -> None:
        edges = {(p, c): d for p, c, d in tiny().edges()}
        assert edges[(ROOT_CODE, "05")] == 0
        assert edges[("05", "05C")] == 1
        assert edges[("05C", "05C40")] == 2

    def test_unknown_code_raises(self) -> None:
        with pytest.raises(UnknownClassError):
            tiny().node("zz")


class TestSerialization:
    def test_round_trip(self) -> None:
        original = tiny()
        rebuilt = ClassificationScheme.from_dict(original.to_dict())
        assert rebuilt.name == original.name
        assert sorted(rebuilt.codes()) == sorted(original.codes())
        assert rebuilt.path_to_root("05C40") == original.path_to_root("05C40")

    def test_out_of_order_parents_resolved(self) -> None:
        payload = {
            "name": "x",
            "classes": [
                {"code": "A1", "title": "", "parent": "A"},
                {"code": "A", "title": "", "parent": None},
            ],
        }
        scheme = ClassificationScheme.from_dict(payload)
        assert scheme.parent_of("A1") == "A"

    def test_unresolvable_parent_raises(self) -> None:
        payload = {"name": "x", "classes": [{"code": "A1", "parent": "missing"}]}
        with pytest.raises(SchemeParseError):
            ClassificationScheme.from_dict(payload)

    def test_bad_classes_type_raises(self) -> None:
        with pytest.raises(SchemeParseError):
            ClassificationScheme.from_dict({"name": "x", "classes": "nope"})


@given(st.lists(st.integers(0, 30), min_size=1, max_size=30, unique=True))
def test_chain_scheme_depth_invariant(codes: list[int]) -> None:
    """Building a chain, each node's depth equals its position + 1."""
    scheme = ClassificationScheme("chain")
    parent: str | None = None
    for index, code in enumerate(codes):
        scheme.add_class(f"N{code}", parent=parent)
        assert scheme.node(f"N{code}").depth == index + 1
        parent = f"N{code}"
    assert scheme.height() == len(codes)
