"""Tests for cross-scheme ontology mapping."""

from repro.core.classification import ClassificationGraph
from repro.ontology.mapping import add_scheme_to_graph, map_schemes, merge_into_graph
from repro.ontology.msc import build_small_msc
from repro.ontology.scheme import ClassificationScheme


def topics_scheme() -> ClassificationScheme:
    scheme = ClassificationScheme("topics")
    scheme.add_class("DM", "Discrete mathematics")
    scheme.add_class("DM-GT", "Graph theory", parent="DM")
    scheme.add_class("FN", "Foundations")
    scheme.add_class("FN-ST", "Set theory", parent="FN")
    scheme.add_class("FN-XY", "Something entirely novel", parent="FN")
    return scheme


class TestMapSchemes:
    def test_exact_title_match(self) -> None:
        mapping = map_schemes(topics_scheme(), build_small_msc())
        graph_theory = mapping.mappings["DM-GT"]
        assert graph_theory.target == "05C"
        assert graph_theory.method == "exact"
        assert graph_theory.confidence == 1.0

    def test_set_theory_matches(self) -> None:
        mapping = map_schemes(topics_scheme(), build_small_msc())
        assert mapping.target_for("FN-ST") == "03E"

    def test_structural_fallback(self) -> None:
        mapping = map_schemes(topics_scheme(), build_small_msc())
        novel = mapping.mappings.get("FN-XY")
        # "Something entirely novel" has no lexical match; it inherits its
        # parent's mapping at reduced confidence (if the parent mapped).
        if novel is not None:
            assert novel.method == "structural"
            assert novel.confidence < 1.0

    def test_coverage_between_zero_and_one(self) -> None:
        mapping = map_schemes(topics_scheme(), build_small_msc())
        assert 0.0 <= mapping.coverage() <= 1.0
        assert len(mapping) >= 2

    def test_unknown_source_class(self) -> None:
        mapping = map_schemes(topics_scheme(), build_small_msc())
        assert mapping.target_for("NOPE") is None

    def test_empty_source_scheme(self) -> None:
        mapping = map_schemes(ClassificationScheme("empty"), build_small_msc())
        assert len(mapping) == 0
        assert mapping.coverage() == 0.0


class TestGraphMerge:
    def test_bridges_connect_schemes(self) -> None:
        msc = build_small_msc()
        topics = topics_scheme()
        graph = ClassificationGraph.from_scheme(msc)
        add_scheme_to_graph(graph, topics)
        assert "DM-GT" in graph

        mapping = map_schemes(topics, msc)
        added = merge_into_graph(graph, mapping, bridge_weight=1.0)
        assert added >= 1
        # Cross-scheme distance is now finite.
        assert graph.distance("DM-GT", "05C40") < float("inf")

    def test_min_confidence_filters(self) -> None:
        msc = build_small_msc()
        topics = topics_scheme()
        graph = ClassificationGraph.from_scheme(msc)
        add_scheme_to_graph(graph, topics)
        mapping = map_schemes(topics, msc)
        strict = merge_into_graph(graph, mapping, min_confidence=1.01)
        assert strict == 0

    def test_method_filter(self) -> None:
        msc = build_small_msc()
        topics = topics_scheme()
        graph = ClassificationGraph.from_scheme(msc)
        add_scheme_to_graph(graph, topics)
        mapping = map_schemes(topics, msc)
        exact_only = merge_into_graph(graph, mapping, methods=("exact",))
        all_methods = merge_into_graph(graph, mapping)
        assert exact_only <= all_methods
