"""Tests for OWL (RDF/XML) serialization of schemes."""

import pytest

from repro.core.errors import SchemeParseError
from repro.ontology.msc import build_small_msc
from repro.ontology.owl import scheme_from_owl, scheme_to_owl
from repro.ontology.scheme import ClassificationScheme


class TestRoundTrip:
    def test_small_scheme(self) -> None:
        scheme = ClassificationScheme("demo")
        scheme.add_class("A", "Alpha")
        scheme.add_class("A1", "Alpha one", parent="A")
        rebuilt = scheme_from_owl(scheme_to_owl(scheme))
        assert rebuilt.name == "demo"
        assert rebuilt.parent_of("A1") == "A"
        assert rebuilt.node("A").title == "Alpha"

    def test_full_msc_round_trip(self) -> None:
        scheme = build_small_msc()
        rebuilt = scheme_from_owl(scheme_to_owl(scheme))
        assert sorted(rebuilt.codes()) == sorted(scheme.codes())
        assert rebuilt.path_to_root("05C40") == scheme.path_to_root("05C40")

    def test_owl_vocabulary_used(self) -> None:
        owl = scheme_to_owl(build_small_msc())
        assert "Ontology" in owl
        assert "Class" in owl
        assert "subClassOf" in owl


class TestErrors:
    def test_bad_xml(self) -> None:
        with pytest.raises(SchemeParseError):
            scheme_from_owl("<rdf:RDF")

    def test_class_without_about(self) -> None:
        xml = (
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" '
            'xmlns:owl="http://www.w3.org/2002/07/owl#">'
            "<owl:Class/></rdf:RDF>"
        )
        with pytest.raises(SchemeParseError):
            scheme_from_owl(xml)

    def test_unknown_ontology_name_defaults(self) -> None:
        xml = (
            '<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" '
            'xmlns:owl="http://www.w3.org/2002/07/owl#"></rdf:RDF>'
        )
        assert scheme_from_owl(xml).name == "scheme"
