"""Tests for the MathWorld-style taxonomy and its mapping onto the MSC."""

from repro.core.classification import ClassificationGraph
from repro.ontology.mapping import add_scheme_to_graph, map_schemes, merge_into_graph
from repro.ontology.mathworld import build_mathworld
from repro.ontology.msc import build_small_msc


class TestScheme:
    def test_builds(self) -> None:
        scheme = build_mathworld()
        assert len(scheme) >= 40
        assert "MW-DM-GT" in scheme
        assert scheme.node("MW-DM-GT").title == "Graph theory"

    def test_three_levels(self) -> None:
        scheme = build_mathworld()
        assert scheme.node("MW-DM-GT-TR").depth == 3
        assert scheme.parent_of("MW-DM-GT") == "MW-DM"

    def test_no_code_collision_with_msc(self) -> None:
        msc_codes = set(build_small_msc().codes())
        mw_codes = set(build_mathworld().codes())
        assert not (msc_codes & mw_codes)


class TestMappingOntoMsc:
    def test_high_coverage(self) -> None:
        mapping = map_schemes(build_mathworld(), build_small_msc())
        assert mapping.coverage() > 0.8

    def test_key_exact_matches(self) -> None:
        mapping = map_schemes(build_mathworld(), build_small_msc())
        assert mapping.target_for("MW-DM-GT") == "05C"
        assert mapping.target_for("MW-FO-ST") == "03E"
        assert mapping.target_for("MW-DM-GT-CN") == "05C40"
        assert mapping.target_for("MW-NT-PR") == "11A41"

    def test_cross_scheme_steering(self) -> None:
        """A MathWorld-classified source steers among MSC candidates."""
        msc = build_small_msc()
        mathworld = build_mathworld()
        graph = ClassificationGraph.from_scheme(msc)
        add_scheme_to_graph(graph, mathworld)
        mapping = map_schemes(mathworld, msc)
        assert merge_into_graph(graph, mapping, bridge_weight=1.0) > 10
        # Source: MathWorld graph-theory topic; candidates: the MSC
        # graph-theory vs set-theory homonyms.  The bridge must make the
        # graph-theory candidate closer.
        to_graph_theory = graph.distance("MW-DM-GT", "05C99")
        to_set_theory = graph.distance("MW-DM-GT", "03E20")
        assert to_graph_theory < to_set_theory
