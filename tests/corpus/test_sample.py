"""Tests for the handcrafted PlanetMath-style sample corpus."""

from repro.corpus.planetmath_sample import GRAPH_ID, SET_GRAPH_ID, sample_corpus
from repro.ontology.msc import build_small_msc


class TestSampleCorpus:
    def test_thirty_entries(self) -> None:
        assert len(sample_corpus()) == 30

    def test_unique_ids(self) -> None:
        ids = [obj.object_id for obj in sample_corpus()]
        assert len(set(ids)) == len(ids)

    def test_graph_homonym_pair(self) -> None:
        by_id = {obj.object_id: obj for obj in sample_corpus()}
        assert "graph" in by_id[GRAPH_ID].defines
        assert "graph" in by_id[SET_GRAPH_ID].defines
        assert by_id[GRAPH_ID].classes == ["05C99"]
        assert by_id[SET_GRAPH_ID].classes == ["03E20"]

    def test_all_classes_in_small_msc(self) -> None:
        scheme = build_small_msc()
        for obj in sample_corpus():
            for code in obj.classes:
                assert code in scheme, (obj.object_id, code)

    def test_policies_parse(self) -> None:
        from repro.core.policies import parse_policy

        for obj in sample_corpus():
            if obj.linking_policy:
                assert parse_policy(obj.linking_policy)

    def test_entries_have_text_and_title(self) -> None:
        for obj in sample_corpus():
            assert obj.title
            assert len(obj.text) > 40
