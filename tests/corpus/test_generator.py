"""Tests for the synthetic corpus generator and its guarantees."""

import pytest

from repro.core.linker import NNexus
from repro.core.morphology import canonicalize_phrase
from repro.corpus.generator import (
    COMMON_WORD_SECTIONS,
    GeneratorParams,
    corpus_statistics,
    generate_corpus,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(GeneratorParams(n_entries=300, seed=99))


class TestShape:
    def test_entry_count(self, corpus) -> None:
        assert len(corpus.objects) == 300

    def test_unique_object_ids(self, corpus) -> None:
        ids = [obj.object_id for obj in corpus.objects]
        assert len(set(ids)) == len(ids)

    def test_every_entry_classified(self, corpus) -> None:
        for obj in corpus.objects:
            assert obj.classes
            for code in obj.classes:
                assert code in corpus.scheme

    def test_common_word_entries_present(self, corpus) -> None:
        assert set(corpus.common_word_objects) == set(COMMON_WORD_SECTIONS)
        for word, object_id in corpus.common_word_objects.items():
            obj = corpus.object_by_id()[object_id]
            assert word in obj.defines

    def test_concept_label_ratio_realistic(self, corpus) -> None:
        stats = corpus_statistics(corpus)
        # PlanetMath: 12,171 concepts over 7,145 entries ~ 1.7 per entry.
        ratio = stats["concept_labels"] / stats["entries"]
        assert 1.2 < ratio < 2.5

    def test_homonyms_exist(self, corpus) -> None:
        stats = corpus_statistics(corpus)
        assert stats["homonym_invocations"] > 0
        assert stats["common_english_uses"] > 0


class TestDeterminism:
    def test_same_seed_same_corpus(self) -> None:
        params = GeneratorParams(n_entries=50, seed=7)
        first = generate_corpus(params)
        second = generate_corpus(params)
        assert [o.text for o in first.objects] == [o.text for o in second.objects]
        assert first.ground_truth == second.ground_truth

    def test_different_seed_different_corpus(self) -> None:
        a = generate_corpus(GeneratorParams(n_entries=50, seed=1))
        b = generate_corpus(GeneratorParams(n_entries=50, seed=2))
        assert [o.text for o in a.objects] != [o.text for o in b.objects]


class TestGroundTruthAlignment:
    """The generator's core contract with the metrics."""

    def test_planted_phrases_appear_in_text(self, corpus) -> None:
        for obj in corpus.objects:
            for invocation in corpus.ground_truth[obj.object_id]:
                assert invocation.phrase in obj.text

    def test_at_most_one_invocation_per_canonical(self, corpus) -> None:
        for invocations in corpus.ground_truth.values():
            canonicals = [inv.canonical for inv in invocations]
            assert len(set(canonicals)) == len(canonicals)

    def test_targets_exist(self, corpus) -> None:
        ids = set(corpus.object_by_id())
        for invocations in corpus.ground_truth.values():
            for invocation in invocations:
                if invocation.target_id is not None:
                    assert invocation.target_id in ids

    def test_linker_achieves_perfect_recall(self, corpus) -> None:
        """Every defined invocation is found: the paper's recall claim."""
        linker = NNexus(scheme=corpus.scheme)
        linker.add_objects(corpus.objects)
        for obj in corpus.objects[:60]:
            document = linker.link_object(obj.object_id)
            produced = {canonicalize_phrase(l.source_phrase) for l in document.links}
            for invocation in corpus.ground_truth[obj.object_id]:
                if invocation.target_id is not None:
                    assert invocation.canonical in produced, (
                        obj.object_id,
                        invocation,
                    )

    def test_linked_phrases_are_all_planted(self, corpus) -> None:
        """No spurious links: the text plants every linkable phrase."""
        linker = NNexus(scheme=corpus.scheme)
        linker.add_objects(corpus.objects)
        for obj in corpus.objects[:60]:
            expected = {
                inv.canonical for inv in corpus.ground_truth[obj.object_id]
            }
            document = linker.link_object(obj.object_id)
            for link in document.links:
                assert canonicalize_phrase(link.source_phrase) in expected

    def test_common_math_uses_come_from_compatible_area(self, corpus) -> None:
        """Policy application must never cause underlinking (Section 2.4)."""
        by_id = corpus.object_by_id()
        for object_id, invocations in corpus.ground_truth.items():
            source_area = by_id[object_id].classes[0][:2]
            for invocation in invocations:
                if invocation.kind == "common-math":
                    word = invocation.phrase
                    assert COMMON_WORD_SECTIONS[word][:2] == source_area


class TestSubset:
    def test_subset_size(self, corpus) -> None:
        subset = corpus.subset(100, seed=1)
        assert len(subset.objects) == 100
        assert set(subset.ground_truth) == {o.object_id for o in subset.objects}

    def test_subset_of_everything_is_corpus(self, corpus) -> None:
        assert corpus.subset(10_000) is corpus

    def test_recommended_policies_coverage(self, corpus) -> None:
        full = corpus.recommended_policies(coverage=1.0)
        half = corpus.recommended_policies(coverage=0.5)
        none = corpus.recommended_policies(coverage=0.0)
        assert len(full) == len(COMMON_WORD_SECTIONS)
        assert len(half) == round(0.5 * len(COMMON_WORD_SECTIONS))
        assert none == {}
        assert set(half) <= set(full)
