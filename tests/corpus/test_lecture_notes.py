"""Tests for the lecture-notes scenario (Fig. 9)."""

from repro.core.linker import NNexus
from repro.core.morphology import canonicalize_phrase
from repro.corpus.generator import GeneratorParams, generate_corpus
from repro.corpus.lecture_notes import generate_lecture_notes, pitman_style_excerpt
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


class TestPitmanExcerpt:
    def test_ground_truth_phrases_in_text(self) -> None:
        note = pitman_style_excerpt()
        for invocation in note.ground_truth:
            assert invocation.phrase.lower() in note.text.lower()

    def test_links_resolve_against_sample_corpus(self) -> None:
        linker = NNexus(scheme=build_small_msc())
        linker.add_objects(sample_corpus())
        note = pitman_style_excerpt()
        document = linker.link_text(note.text, source_classes=note.classes)
        produced = {
            canonicalize_phrase(l.source_phrase): l.target_id for l in document.links
        }
        correct = sum(
            1
            for invocation in note.ground_truth
            if produced.get(invocation.canonical) == invocation.target_id
        )
        # The probability-classified note steers 'graph' to graph theory
        # etc.; expect the overwhelming majority correct.
        assert correct >= len(note.ground_truth) - 1

    def test_homonym_steered_by_note_classes(self) -> None:
        linker = NNexus(scheme=build_small_msc())
        linker.add_objects(sample_corpus())
        note = pitman_style_excerpt()
        document = linker.link_text(note.text, source_classes=note.classes)
        graph_links = [l for l in document.links if l.source_phrase.lower() == "graph"]
        assert graph_links and graph_links[0].target_id == 5


class TestGeneratedNotes:
    def test_generation_shape(self) -> None:
        corpus = generate_corpus(GeneratorParams(n_entries=200, seed=5))
        notes = generate_lecture_notes(corpus, count=10, seed=1)
        assert len(notes) == 10
        for note in notes:
            assert note.text
            assert note.ground_truth
            for invocation in note.ground_truth:
                assert invocation.phrase in note.text

    def test_notes_link_with_high_recall(self) -> None:
        corpus = generate_corpus(GeneratorParams(n_entries=200, seed=5))
        linker = NNexus(scheme=corpus.scheme)
        linker.add_objects(corpus.objects)
        notes = generate_lecture_notes(corpus, count=5, seed=2)
        for note in notes:
            document = linker.link_text(note.text, source_classes=note.classes)
            produced = {canonicalize_phrase(l.source_phrase) for l in document.links}
            found = sum(1 for inv in note.ground_truth if inv.canonical in produced)
            assert found == len(note.ground_truth)
