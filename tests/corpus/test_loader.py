"""Tests for corpus serialization."""

from repro.corpus.generator import GeneratorParams, generate_corpus
from repro.corpus.loader import (
    load_corpus,
    load_synthetic_corpus,
    save_corpus,
    save_synthetic_corpus,
)
from repro.corpus.planetmath_sample import sample_corpus


class TestPlainCorpusRoundTrip:
    def test_round_trip(self, tmp_path) -> None:
        path = tmp_path / "corpus.json"
        original = sample_corpus()
        save_corpus(original, path)
        loaded = load_corpus(path)
        assert loaded == original

    def test_defaults_filled(self, tmp_path) -> None:
        path = tmp_path / "c.json"
        path.write_text('{"objects": [{"object_id": 1}]}')
        loaded = load_corpus(path)
        assert loaded[0].domain == "default"
        assert loaded[0].defines == []


class TestSyntheticRoundTrip:
    def test_round_trip(self, tmp_path) -> None:
        corpus = generate_corpus(GeneratorParams(n_entries=40, seed=3))
        path = tmp_path / "syn.json"
        save_synthetic_corpus(corpus, path)
        loaded = load_synthetic_corpus(path)
        assert loaded.objects == corpus.objects
        assert loaded.ground_truth == corpus.ground_truth
        assert loaded.common_word_objects == corpus.common_word_objects
        assert loaded.params == corpus.params
        assert sorted(loaded.scheme.codes()) == sorted(corpus.scheme.codes())

    def test_loaded_corpus_usable_for_scoring(self, tmp_path) -> None:
        from repro.eval.experiments import build_linker
        from repro.eval.metrics import score_corpus

        corpus = generate_corpus(GeneratorParams(n_entries=40, seed=3))
        path = tmp_path / "syn.json"
        save_synthetic_corpus(corpus, path)
        loaded = load_synthetic_corpus(path)
        linker = build_linker(loaded)
        report = score_corpus(linker, loaded.objects, loaded.ground_truth)
        assert report.recall == 1.0
