"""Tests for the MediaWiki dump importer."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.linker import NNexus
from repro.corpus.mediawiki import (
    pages_to_corpus,
    parse_dump,
    strip_wiki_markup,
)
from repro.ontology.msc import build_small_msc


SAMPLE_DUMP = """<mediawiki xmlns="http://www.mediawiki.org/xml/export-0.10/">
  <siteinfo><sitename>TestWiki</sitename></siteinfo>
  <page>
    <title>Planar graph</title>
    <revision><text>{{Infobox|type=graph}}
A '''planar graph''' is a [[graph (discrete mathematics)|graph]] that can be
embedded in the [[plane]].&lt;!-- hidden --&gt;
== Properties ==
Every planar graph is [[four color theorem|four-colorable]].<ref>K. Appel</ref>
[[Category:Graph theory]]
</text></revision>
  </page>
  <page>
    <title>Plane</title>
    <revision><text>The '''plane''' is flat two dimensional space.
[[Category:Geometry]]</text></revision>
  </page>
  <page>
    <title>Planar graphs</title>
    <revision><text>#REDIRECT [[Planar graph]]</text></revision>
  </page>
  <page>
    <title>Talk:Planar graph</title>
    <revision><text>discussion page, must be skipped</text></revision>
  </page>
  <page>
    <title>Graph (discrete mathematics)</title>
    <revision><text>A '''graph''' is a set of [[vertex (graph theory)|vertices]]
and edges. [[Category:Graph theory]]</text></revision>
  </page>
</mediawiki>
"""

CATEGORY_MAP = {"Graph theory": "05C", "Geometry": "51M"}


class TestMarkupStripping:
    def test_templates_removed(self) -> None:
        assert strip_wiki_markup("{{Infobox|x={{nested}}}} text") == "text"

    def test_links_become_display_text(self) -> None:
        assert strip_wiki_markup("[[target|shown]] and [[plain]]") == "shown and plain"

    def test_section_anchor_dropped(self) -> None:
        assert strip_wiki_markup("[[Page#Section|label]]") == "label"

    def test_headings_flattened(self) -> None:
        assert "Properties." in strip_wiki_markup("== Properties ==\nbody")

    def test_refs_and_comments_removed(self) -> None:
        text = "fact<ref>cite</ref> more<!-- note --> done"
        assert strip_wiki_markup(text) == "fact more done"

    def test_bold_italic_markers_removed(self) -> None:
        assert strip_wiki_markup("'''bold''' ''italic''") == "bold italic"

    def test_category_and_file_links_removed(self) -> None:
        text = "body [[Category:Math]] [[File:pic.png|thumb]]"
        assert strip_wiki_markup(text) == "body"


class TestParseDump:
    def test_pages_parsed(self) -> None:
        pages = parse_dump(SAMPLE_DUMP)
        titles = [page.title for page in pages]
        assert "Planar graph" in titles
        assert "Talk:Planar graph" not in titles

    def test_redirect_detected(self) -> None:
        pages = {page.title: page for page in parse_dump(SAMPLE_DUMP)}
        assert pages["Planar graphs"].redirect_to == "Planar graph"
        assert not pages["Planar graph"].is_redirect

    def test_categories_extracted(self) -> None:
        pages = {page.title: page for page in parse_dump(SAMPLE_DUMP)}
        assert pages["Planar graph"].categories == ["Graph theory"]

    def test_existing_links_recorded(self) -> None:
        pages = {page.title: page for page in parse_dump(SAMPLE_DUMP)}
        assert "plane" in [l.lower() for l in pages["Planar graph"].links]

    def test_bad_xml_raises(self) -> None:
        with pytest.raises(ProtocolError):
            parse_dump("<mediawiki")


class TestPagesToCorpus:
    def test_objects_built(self) -> None:
        objects = pages_to_corpus(parse_dump(SAMPLE_DUMP), CATEGORY_MAP)
        by_title = {obj.title: obj for obj in objects}
        assert by_title["Planar graph"].classes == ["05C"]
        assert by_title["Plane"].classes == ["51M"]
        # Redirect became a synonym, not an object.
        assert "Planar graphs" not in by_title
        assert by_title["Planar graph"].synonyms == ["Planar graphs"]

    def test_unmapped_categories_dropped(self) -> None:
        objects = pages_to_corpus(parse_dump(SAMPLE_DUMP), category_map={})
        assert all(obj.classes == [] for obj in objects)

    def test_ids_sequential(self) -> None:
        objects = pages_to_corpus(parse_dump(SAMPLE_DUMP), CATEGORY_MAP, first_id=100)
        assert [obj.object_id for obj in objects] == [100, 101, 102]

    def test_imported_corpus_links(self) -> None:
        """End to end: dump -> corpus -> automatic linking."""
        objects = pages_to_corpus(parse_dump(SAMPLE_DUMP), CATEGORY_MAP)
        linker = NNexus(scheme=build_small_msc())
        linker.add_objects(objects)
        document = linker.link_text(
            "Drawing planar graphs in the plane.", source_classes=["05C10"]
        )
        phrases = {l.source_phrase.lower() for l in document.links}
        assert "planar graphs" in phrases
        assert "plane" in phrases
