"""Tests for the extension experiments (growth, connectivity, auto-policies)."""

import pytest

from repro.corpus.generator import GeneratorParams, generate_corpus
from repro.eval.experiments import (
    run_auto_policy_study,
    run_connectivity_study,
    run_growth_study,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(GeneratorParams(n_entries=300, seed=21))


class TestGrowthStudy:
    def test_checkpoints_monotone(self, corpus) -> None:
        result = run_growth_study(corpus, final_size=200, checkpoints=4)
        sizes = [size for size, __, ___ in result.checkpoints]
        with_index = [w for __, w, ___ in result.checkpoints]
        naive = [n for __, ___, n in result.checkpoints]
        assert sizes == sorted(sizes)
        assert with_index == sorted(with_index)
        assert naive == sorted(naive)

    def test_naive_is_exact_quadratic_sum(self, corpus) -> None:
        result = run_growth_study(corpus, final_size=100, checkpoints=1)
        size, __, naive = result.checkpoints[-1]
        assert naive == size * (size - 1) // 2

    def test_index_beats_naive(self, corpus) -> None:
        result = run_growth_study(corpus, final_size=250)
        assert result.final_savings > 1.5
        assert "Growth study" in result.format()


class TestAutoPolicyStudy:
    def test_study_shape(self, corpus) -> None:
        result = run_auto_policy_study(corpus, min_usages=5)
        assert result.auto_policies.precision >= result.baseline.precision
        assert result.auto_policies.recall == 1.0
        assert 0.0 <= result.detector_precision <= 1.0
        assert 0.0 <= result.detector_recall <= 1.0
        assert "Automatic policy suggestion" in result.format()

    def test_detector_counts_consistent(self, corpus) -> None:
        result = run_auto_policy_study(corpus, min_usages=5)
        assert result.correctly_flagged <= result.suggested
        assert result.correctly_flagged <= result.true_culprits


class TestErrorBreakdown:
    def test_mechanism_attribution(self, corpus) -> None:
        from repro.eval.experiments import run_error_breakdown

        result = run_error_breakdown(corpus)
        by_name = dict(result.rows)
        lexical = by_name["lexical only"]
        steered = by_name["+ steering"]
        full = by_name["+ steering + policies"]

        # Plain concepts never err: unique labels, single candidates.
        assert lexical["concept"][0] == 0
        # Steering fixes in-area homonyms...
        assert steered["homonym"][0] < lexical["homonym"][0]
        # ...and policies fix common-English overlinks.
        assert full["common-english"][0] < steered["common-english"][0]
        # Policies never break genuine mathematical uses (recall!).
        assert full["common-math"][0] == 0
        assert "Error breakdown" in result.format()

    def test_totals_consistent_across_configs(self, corpus) -> None:
        from repro.eval.experiments import run_error_breakdown

        result = run_error_breakdown(corpus)
        totals = [
            {kind: total for kind, (__, total) in by_kind.items()}
            for __, by_kind in result.rows
        ]
        assert totals[0] == totals[1] == totals[2]


class TestConnectivityStudy:
    def test_rows_and_format(self, corpus) -> None:
        result = run_connectivity_study(corpus, efforts=(0.6,))
        assert len(result.rows) == 2
        names = [name for name, __ in result.rows]
        assert names[0] == "NNexus (automatic)"
        formatted = result.format()
        assert "largest WCC" in formatted
