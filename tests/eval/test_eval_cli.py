"""The eval CLI: every experiment target runs end to end (tiny corpus)."""

import pytest

from repro.eval.__main__ import main


@pytest.mark.parametrize(
    ("name", "marker"),
    [
        ("table1", "Table 1"),
        ("table2", "Table 2"),
        ("table3", "Table 3"),
        ("fig8", "Fig. 8"),
        ("mislink", "Mislink/overlink"),
        ("baselines", "Baseline comparison"),
        ("ablation-weighting", "weight base"),
        ("ablation-invalidation", "invalidation index"),
        ("ablation-conceptmap", "concept map"),
        ("auto-policies", "policy suggestion"),
        ("connectivity", "Connectivity study"),
        ("growth", "Growth study"),
        ("error-breakdown", "Error breakdown"),
    ],
)
def test_every_experiment_runs(name: str, marker: str, capsys) -> None:
    assert main([name, "--entries", "150"]) == 0
    assert marker in capsys.readouterr().out


def test_custom_sizes_for_table3(capsys) -> None:
    assert main(["table3", "--entries", "150", "--sizes", "40,80"]) == 0
    out = capsys.readouterr().out
    assert "| 40" in out
    assert "| 80" in out


def test_corpus_banner_printed(capsys) -> None:
    main(["table1", "--entries", "150"])
    out = capsys.readouterr().out
    assert "150 entries" in out
