"""Tests for the experiment drivers on a small synthetic corpus.

These assert the *shape* invariants the paper reports, at a corpus size
small enough for unit testing (the full-size runs live in benchmarks/).
"""

import pytest

from repro.corpus.generator import GeneratorParams, generate_corpus
from repro.eval import experiments


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(GeneratorParams(n_entries=400, seed=12))


class TestTable1(object):
    def test_policies_reduce_overlinking(self, corpus) -> None:
        result = experiments.run_table1(corpus, sample_size=20, fix_count=5)
        assert result.before.entries == 20
        assert result.after.entries == 20
        assert result.after.overlink_rate <= result.before.overlink_rate
        assert result.after.mislink_rate <= result.before.mislink_rate
        assert "Table 1" in result.format()

    def test_policies_added_to_offenders_only(self, corpus) -> None:
        result = experiments.run_table1(corpus, sample_size=20, fix_count=5)
        recommended = set(corpus.recommended_policies())
        assert set(result.policies_added_to) <= recommended


class TestTable2:
    def test_precision_ordering(self, corpus) -> None:
        result = experiments.run_table2(corpus)
        lexical, steered, full = result.rows
        assert lexical.full.precision <= steered.full.precision
        assert steered.full.precision < full.full.precision

    def test_recall_perfect_throughout(self, corpus) -> None:
        result = experiments.run_table2(corpus)
        for row in result.rows:
            assert row.full.recall == 1.0

    def test_policy_row_drops_links_not_recall(self, corpus) -> None:
        result = experiments.run_table2(corpus)
        lexical, __, full = result.rows
        assert full.full.links_created < lexical.full.links_created

    def test_format_contains_rows(self, corpus) -> None:
        formatted = experiments.run_table2(corpus).format()
        assert "lexical matching only" in formatted
        assert "+ steering + linking policies" in formatted


class TestTable3:
    def test_sweep_rows(self, corpus) -> None:
        result = experiments.run_table3(corpus, sizes=(50, 150, 400))
        assert [row.corpus_size for row in result.rows] == [50, 150, 400]
        for row in result.rows:
            assert row.total_seconds > 0
            assert row.links > 0
            assert row.seconds_per_link > 0

    def test_sizes_capped_at_corpus(self, corpus) -> None:
        result = experiments.run_table3(corpus, sizes=(100, 10_000))
        assert result.rows[-1].corpus_size == 400

    def test_fig8_series_matches_rows(self, corpus) -> None:
        result = experiments.run_table3(corpus, sizes=(50, 150))
        series = result.fig8_series()
        assert series == [
            (row.corpus_size, row.seconds_per_link) for row in result.rows
        ]
        assert "Fig. 8" in result.format_fig8()


class TestMislinkStudy:
    def test_overlinks_majority_of_mislinks(self, corpus) -> None:
        result = experiments.run_mislink_study(corpus)
        report = result.report
        assert report.mislinks >= report.overlinks > 0
        # The paper's headline structure: most mislinks are overlinks.
        assert report.overlink_share_of_mislinks > 0.5
        assert "Mislink/overlink study" in result.format()


class TestBaselineComparison:
    def test_nnexus_beats_floor_baselines(self, corpus) -> None:
        result = experiments.run_baseline_comparison(corpus, sample_size=80)
        by_name = {row.name: row for row in result.rows}
        nnexus = by_name["NNexus (steering+policies)"]
        random_row = by_name["random candidate"]
        assert nnexus.precision > random_row.precision
        lexical = by_name["lexical only"]
        assert nnexus.precision > lexical.precision

    def test_semiauto_recall_below_automatic(self, corpus) -> None:
        result = experiments.run_baseline_comparison(
            corpus, sample_size=80, author_effort=0.8
        )
        by_name = {row.name.split(" (")[0]: row for row in result.rows}
        assert by_name["semiautomatic"].recall < by_name["NNexus"].recall

    def test_format(self, corpus) -> None:
        assert "Baseline comparison" in experiments.run_baseline_comparison(
            corpus, sample_size=20
        ).format()


class TestAblations:
    def test_weighting_rows(self, corpus) -> None:
        result = experiments.run_ablation_weighting(
            corpus, bases=(1.0, 10.0), sample_size=80
        )
        assert len(result.rows) == 2
        for __, report in result.rows:
            assert 0.0 <= report.precision <= 1.0
        assert "non-weighted" in result.format()

    def test_invalidation_superset_smaller_than_rescan(self, corpus) -> None:
        result = experiments.run_ablation_invalidation(corpus, probes=20)
        assert result.mean_phrase_superset <= result.mean_word_superset
        assert result.mean_word_superset <= result.corpus_size
        # The headline economy: phrase lookups touch far fewer entries
        # than a full rescan.
        assert result.mean_phrase_superset < result.corpus_size / 2
        assert result.index_size_ratio >= 1.0

    def test_concept_map_faster_than_naive(self, corpus) -> None:
        result = experiments.run_ablation_concept_map(corpus, sample_size=15)
        assert result.concept_map_seconds < result.naive_seconds
        assert result.speedup > 1.0
