"""Tests for the quality metrics."""

from repro.core.models import Link, LinkedDocument
from repro.corpus.generator import GroundTruthInvocation
from repro.eval.metrics import QualityReport, score_entry


def gt(phrase: str, target: int | None, kind: str = "concept") -> GroundTruthInvocation:
    from repro.core.morphology import canonicalize_phrase

    return GroundTruthInvocation(phrase, canonicalize_phrase(phrase), target, kind)


def doc(*links: tuple[str, int]) -> LinkedDocument:
    return LinkedDocument(
        source_text="",
        links=[Link(phrase, target, "d", 0, 1) for phrase, target in links],
    )


class TestScoreEntry:
    def test_all_correct(self) -> None:
        quality = score_entry(
            doc(("planar graph", 2), ("tree", 11)),
            [gt("planar graph", 2), gt("tree", 11)],
            object_id=1,
        )
        assert quality.correct == 2
        assert quality.mislinks == 0
        assert quality.underlinks == 0
        assert quality.defined_invocations == 2

    def test_mislink_counted(self) -> None:
        quality = score_entry(doc(("graph", 6)), [gt("graph", 5)], 1)
        assert quality.mislinks == 1
        assert quality.overlinks == 0
        assert quality.mislink_details == [("graph", 6, 5)]

    def test_overlink_is_also_mislink(self) -> None:
        quality = score_entry(doc(("even", 7)), [gt("even", None, "common-english")], 1)
        assert quality.overlinks == 1
        assert quality.mislinks == 1
        assert quality.overlink_details == [("even", 7)]

    def test_underlink_counted(self) -> None:
        quality = score_entry(doc(), [gt("tree", 11)], 1)
        assert quality.underlinks == 1
        assert quality.links_created == 0

    def test_unplanted_link_is_spurious_overlink(self) -> None:
        quality = score_entry(doc(("mystery", 9)), [], 1)
        assert quality.spurious == 1
        assert quality.overlinks == 1

    def test_morphological_variant_matches_ground_truth(self) -> None:
        quality = score_entry(doc(("Planar Graphs", 2)), [gt("planar graph", 2)], 1)
        assert quality.correct == 1

    def test_suppressed_overlink_not_underlink(self) -> None:
        # A common-english invocation that was (correctly) not linked
        # must not count as an underlink.
        quality = score_entry(doc(), [gt("even", None, "common-english")], 1)
        assert quality.underlinks == 0
        assert quality.defined_invocations == 0


class TestQualityReport:
    def build(self) -> QualityReport:
        report = QualityReport()
        report.add(score_entry(doc(("a", 1), ("b", 2)), [gt("a", 1), gt("b", 9)], 1))
        report.add(score_entry(doc(("c", 3)), [gt("c", None)], 2))
        return report

    def test_aggregation(self) -> None:
        report = self.build()
        assert report.entries == 2
        assert report.links_created == 3
        assert report.correct == 1
        assert report.mislinks == 2
        assert report.overlinks == 1

    def test_precision_recall(self) -> None:
        report = self.build()
        assert report.precision == 1 / 3
        assert report.recall == 1.0  # both defined invocations got links

    def test_rates(self) -> None:
        report = self.build()
        assert report.mislink_rate == 2 / 3
        assert report.overlink_rate == 1 / 3
        assert report.overlink_share_of_mislinks == 1 / 2

    def test_empty_report_degenerate_values(self) -> None:
        report = QualityReport()
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.mislink_rate == 0.0
        assert report.overlink_share_of_mislinks == 0.0

    def test_summary_keys(self) -> None:
        summary = self.build().summary()
        assert {"precision", "recall", "mislink_rate", "overlink_rate"} <= set(summary)
