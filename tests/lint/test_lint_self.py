"""The linter's own gate: the real tree must be clean under the baseline."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import all_rules
from repro.lint.__main__ import main
from repro.lint.baseline import Baseline
from repro.lint.engine import run_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


class TestSelf:
    def test_src_tree_has_no_unbaselined_findings(self) -> None:
        findings, _ = run_rules([SRC], all_rules(), root=REPO_ROOT)
        baseline_path = REPO_ROOT / "lint-baseline.json"
        baseline = (
            Baseline.load(baseline_path) if baseline_path.exists() else Baseline()
        )
        new, _known = baseline.split(findings)
        assert new == [], [f.format() for f in new]

    def test_checked_in_baseline_is_valid_and_minimal(self) -> None:
        baseline_path = REPO_ROOT / "lint-baseline.json"
        assert baseline_path.exists()
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == 1
        # Every baselined fingerprint must still correspond to a live
        # finding — stale entries hide future regressions.
        findings, _ = run_rules([SRC], all_rules(), root=REPO_ROOT)
        live = {f.fingerprint for f in findings}
        stale = [
            e["fingerprint"]
            for e in payload["findings"]
            if e["fingerprint"] not in live
        ]
        assert stale == []

    def test_cli_exit_zero_on_repo(self, capsys) -> None:
        assert main([str(SRC), "--baseline", str(REPO_ROOT / "lint-baseline.json")]) in (
            0,
        )

    def test_suppressed_waivers_carry_reasons(self) -> None:
        """Every inline waiver in src/ must sit next to an explanation.

        A bare ``# lint: disable=...`` with no nearby prose defeats the
        point of sanctioned-violation comments.
        """
        for path in SRC.rglob("*.py"):
            if "lint" in path.parts:
                # The checker's own sources quote the marker in docs.
                continue
            lines = path.read_text(encoding="utf-8").splitlines()
            for lineno, line in enumerate(lines, start=1):
                if "lint: disable" not in line:
                    continue
                window = lines[max(0, lineno - 6) : lineno]
                assert any(
                    "#" in w and "lint:" not in w for w in window
                ), f"{path}:{lineno} waiver lacks an explanatory comment"
