"""REP105 extractor behaviour and schema-snapshot freshness."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import DEFAULT_SCHEMA_PATH, WireAdditivityRule, extract_surfaces
from repro.lint.__main__ import main
from repro.lint.engine import load_module, run_rules

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SERVER_SRC = REPO_ROOT / "src" / "repro" / "server"


class TestExtractor:
    def test_response_kwargs_and_fields_dict(self) -> None:
        module = load_module(FIXTURES / "server" / "wire_ok" / "server.py")
        surfaces = extract_surfaces(module)
        assert surfaces["server.py::Server._ping"] == {
            "status",
            "method",
            "pong",
        }

    def test_real_dispatch_message_surface(self) -> None:
        module = load_module(SERVER_SRC / "server.py")
        surfaces = extract_surfaces(module)
        dispatch = surfaces["server.py::NNexusServer.dispatch_message"]
        # The error envelope plus the traceid added via fields.setdefault.
        assert {"status", "method", "error", "code", "retryable", "traceid"} <= (
            dispatch
        )

    def test_real_gateway_link_surface_includes_nested_link_keys(self) -> None:
        module = load_module(SERVER_SRC / "http_gateway.py")
        surfaces = extract_surfaces(module)
        link = surfaces["http_gateway.py::NNexusHttpGateway.link"]
        assert {"body", "linkcount", "links", "phrase", "target", "url"} <= link

    def test_local_dict_subscript_assigns_are_collected(self) -> None:
        module = load_module(SERVER_SRC / "http_gateway.py")
        surfaces = extract_surfaces(module)
        ready = surfaces["http_gateway.py::_Handler.do_GET"]
        # /ready's payload dict gains mode/reason through subscripts.
        assert {"status", "mode", "reason"} <= ready


class TestSnapshotFreshness:
    def test_checked_in_snapshot_matches_current_sources(self) -> None:
        """The bundled wire_schema.json must stay regenerable byte-for-byte.

        Failing here means a handler changed its response keys without
        running ``python -m repro.lint --update-wire-schema``.
        """
        findings, _ = run_rules(
            [SERVER_SRC], [WireAdditivityRule()], root=REPO_ROOT
        )
        assert findings == [], [f.format() for f in findings]

    def test_update_wire_schema_cli_reproduces_snapshot(self, tmp_path, capsys):
        target = tmp_path / "schema.json"
        assert (
            main(
                [
                    str(SERVER_SRC),
                    "--update-wire-schema",
                    "--schema",
                    str(target),
                ]
            )
            == 0
        )
        assert json.loads(target.read_text()) == json.loads(
            DEFAULT_SCHEMA_PATH.read_text()
        )

    def test_dropping_a_snapshot_key_is_flagged(self, tmp_path) -> None:
        payload = json.loads(DEFAULT_SCHEMA_PATH.read_text())
        payload["surfaces"]["server.py::NNexusServer._ping"].append("heartbeat")
        mutated = tmp_path / "schema.json"
        mutated.write_text(json.dumps(payload))
        findings, _ = run_rules(
            [SERVER_SRC / "server.py"],
            [WireAdditivityRule(schema_path=mutated)],
            root=REPO_ROOT,
        )
        assert any(
            "dropped response key(s) heartbeat" in f.message for f in findings
        )
