"""Baseline round-trips and the CLI's exit-code contract."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.__main__ import main
from repro.lint.baseline import Baseline
from repro.lint.engine import Finding

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "server" / "rep101_bad.py"
CLEAN = FIXTURES / "server" / "rep101_clean.py"


def _finding(message: str = "m", path: str = "a.py") -> Finding:
    return Finding("REP101", path, 1, 0, message, context="f")


class TestBaseline:
    def test_round_trip_preserves_entries_and_notes(self, tmp_path) -> None:
        finding = _finding()
        baseline = Baseline.from_findings(
            [finding], notes={finding.fingerprint: "sanctioned because reasons"}
        )
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert finding in loaded
        assert loaded.notes[finding.fingerprint] == "sanctioned because reasons"

    def test_split_partitions_new_vs_known(self) -> None:
        known = _finding("known")
        new = _finding("new")
        baseline = Baseline.from_findings([known])
        fresh, grandfathered = baseline.split([known, new])
        assert fresh == [new]
        assert grandfathered == [known]

    def test_entries_exclude_line_numbers(self, tmp_path) -> None:
        baseline = Baseline.from_findings([_finding()])
        target = tmp_path / "baseline.json"
        baseline.save(target)
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert "line" not in payload["findings"][0]

    def test_rejects_unknown_version(self, tmp_path) -> None:
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99}')
        try:
            Baseline.load(target)
        except ValueError as exc:
            assert "unsupported" in str(exc)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")


class TestCli:
    def test_exit_one_on_violations(self, capsys) -> None:
        assert main([str(BAD), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "REP101" in out
        assert "new finding(s)" in out

    def test_exit_zero_on_clean_tree(self, capsys) -> None:
        assert main([str(CLEAN), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_baseline_grandfathers_findings(self, tmp_path, capsys) -> None:
        baseline = tmp_path / "baseline.json"
        assert main([str(BAD), "--baseline", str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main([str(BAD), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_write_baseline_preserves_surviving_notes(self, tmp_path) -> None:
        baseline = tmp_path / "baseline.json"
        main([str(BAD), "--baseline", str(baseline), "--write-baseline"])
        payload = json.loads(baseline.read_text())
        payload["findings"][0]["note"] = "waiting on the lock refactor"
        baseline.write_text(json.dumps(payload))
        main([str(BAD), "--baseline", str(baseline), "--write-baseline"])
        rewritten = json.loads(baseline.read_text())
        notes = {e["note"] for e in rewritten["findings"]}
        assert "waiting on the lock refactor" in notes

    def test_json_output_is_machine_readable(self, capsys) -> None:
        main([str(BAD), "--no-baseline", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["baselined"] == []
        assert {f["rule"] for f in payload["new"]} == {"REP101"}

    def test_suppressions_are_reported_not_failed(self, capsys) -> None:
        assert main([str(CLEAN), "--no-baseline"]) == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_list_rules_inventory(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP101", "REP102", "REP103", "REP104", "REP105"):
            assert code in out
