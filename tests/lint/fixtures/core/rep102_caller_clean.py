"""REP102 caller-half clean fixture: the sanctioned routes."""


class Linker:
    def __init__(self, storage):
        self.storage = storage

    def add_object(self, obj, invalidated):
        self._journal(lambda: self.storage.record_add(obj, invalidated))

    def backfill(self, objects):
        """Pre-serving migration; transactional inside the backend."""
        for obj in objects:
            self.storage.replace_labels(obj.object_id, ())

    def suppressed_direct_call(self, obj):
        # Sanctioned one-off with an inline waiver.
        self.storage.record_update(obj, (), ())  # lint: disable=REP102

    def _journal(self, operation):
        operation()
