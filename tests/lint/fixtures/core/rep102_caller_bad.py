"""REP102 caller-half true positive: storage calls bypassing _journal."""


class Linker:
    def __init__(self, storage):
        self.storage = storage

    def add_object(self, obj, invalidated):
        # finding: a disk failure here crashes the request instead of
        # degrading to read-only via _journal().
        self.storage.record_add(obj, invalidated)

    def _journal(self, operation):
        operation()
