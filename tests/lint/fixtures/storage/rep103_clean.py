"""REP103 clean fixture: every raised path closes, IN lists are chunked."""

import sqlite3

_MAX_VARS = 500


def guarded_open(path, parse):
    fh = open(path, "r", encoding="utf-8")
    try:
        data = parse(fh.read())
    finally:
        fh.close()
    return data


class GuardedBackend:
    def __init__(self, path):
        conn = sqlite3.connect(path)
        try:
            conn.execute("PRAGMA quick_check")
        except sqlite3.DatabaseError:
            conn.close()
            raise
        except BaseException:
            conn.close()
            raise
        self._conn = conn

    def invalidate(self, ids):
        ids = sorted(ids)
        for start in range(0, len(ids), _MAX_VARS):
            chunk = ids[start : start + _MAX_VARS]
            placeholders = ",".join("?" for _ in chunk)
            self._conn.execute(
                f"UPDATE renderings SET valid = 0 "
                f"WHERE object_id IN ({placeholders})",
                chunk,
            )


def delegated_close(path):
    fh = open(path, "a", encoding="utf-8")

    def handle(record):
        fh.write(record)

    handle.close = fh.close  # ownership moves to the handler
    return handle


def handed_to_wrapper(path, wrap):
    fh = open(path, "rb")
    return wrap(fh)  # the wrapper owns fh now; caller closes it


def suppressed_leak(path, probe):
    # probe() raising would leak fh; sanctioned here with a waiver.
    fh = open(path, "rb")  # lint: disable=REP103
    probe(fh.read())
    fh.close()
