"""REP103 true-positive fixture: leaks on raise and unbounded IN lists."""

import sqlite3


def leaky_open(path, parse):
    fh = open(path, "r", encoding="utf-8")
    data = parse(fh.read())  # finding: parse() raising leaks fh
    fh.close()
    return data


class LeakyBackend:
    def __init__(self, path):
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA quick_check")  # finding: raise leaks conn
        self._conn = conn

    def invalidate(self, ids):
        placeholders = ",".join("?" for _ in ids)
        self._conn.execute(  # finding: unbounded host-parameter list
            f"UPDATE renderings SET valid = 0 WHERE object_id IN ({placeholders})",
            list(ids),
        )


def leaky_after_guard(path, build):
    try:
        fh = open(path, "rb")
    except OSError:
        return None
    return build(fh.read())  # finding: build() raising leaks fh
