"""REP105 clean fixture: surface matches the snapshot; waivers work."""


def Response(**fields):
    return fields


class Server:
    def _ping(self, request):
        return Response(status="ok", method="ping", fields={"pong": "1"})

    # New debug surface sanctioned ahead of a schema regeneration.
    # lint: disable=REP105
    def _debug(self, request):
        return Response(status="ok", method="debug", fields={"dump": "{}"})
