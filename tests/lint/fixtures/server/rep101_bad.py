"""REP101 true-positive fixture: blocking calls inside lock regions."""

import time


class Server:
    def __init__(self, rwlock, lock, sock, storage):
        self.rwlock = rwlock
        self._lock = lock
        self.sock = sock
        self.storage = storage

    def slow_write(self, payload):
        with self.rwlock.write_lock():
            time.sleep(0.5)  # finding: sleep while writers are starved
            self.apply(payload)

    def flush_under_lock(self):
        with self._lock:
            self.sock.sendall(b"state")  # finding: socket I/O under lock

    def journal_under_lock(self, obj):
        with self.rwlock.read_lock():
            self.storage.record_add(obj, ())  # finding: disk I/O under lock

    def apply(self, payload):
        return payload
