"""REP101 clean fixture: sanctioned shapes the rule must not flag."""

import time


class Server:
    def __init__(self, rwlock, cond, sock, storage):
        self.rwlock = rwlock
        self._cond = cond
        self.sock = sock
        self.storage = storage

    def wait_for_turn(self):
        # Condition waits release the lock: explicitly not blocking.
        with self._cond:
            self._cond.wait_for(lambda: True, timeout=1.0)

    def read_then_io(self, payload):
        with self.rwlock.read_lock():
            snapshot = self.compute(payload)
        # I/O happens after the lock is released.
        self.sock.sendall(snapshot)

    def join_strings_under_lock(self, parts):
        with self.rwlock.read_lock():
            return ",".join(parts)  # str.join is not a thread join

    def sanctioned_sleep(self):
        with self.rwlock.write_lock():
            # Single-use backoff probe, sanctioned by review.
            time.sleep(0.001)  # lint: disable=REP101

    def compute(self, payload):
        return payload
