"""REP105 true-positive fixture: a dropped key and an unrecorded surface."""


def Response(**fields):
    return fields


class Server:
    def _ping(self, request):
        # finding: the schema snapshot records a "pong" field; this
        # response no longer carries it.
        return Response(status="ok", method="ping")

    def _sneaky(self, request):
        # finding: a wire surface the snapshot has never seen.
        return Response(status="ok", method="sneaky", fields={"shadow": "1"})
