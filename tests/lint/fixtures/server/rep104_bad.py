"""REP104 true-positive fixture: prints, span-less handler, None-chains,
wall-clock deltas."""

import time
from time import time  # noqa: F811 — fixture exercises both spellings


def timed_call(fn):
    start = time.time()
    fn()
    return time.time() - start  # finding: wall-clock delta as duration


def timed_call_bare(fn):
    start = time()
    fn()
    elapsed = time() - start  # finding: bare imported time() delta
    return elapsed


class Handler:
    def do_GET(self):  # finding: wire handler without a span
        print("handling", self.path)  # finding: print in library code
        self.respond(200)

    def respond(self, status):
        return status


class Pipeline:
    def __init__(self, tracer):
        self.tracer = tracer

    def run(self, item):
        if self.tracer is not None:  # finding: None-check on the hot path
            self.tracer.record_span("stage.run", 0.0)
        return item
