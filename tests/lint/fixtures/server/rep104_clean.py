"""REP104 clean fixture: spans opened, null-object pattern, logger used,
monotonic durations."""

from time import monotonic, time

NULL_TRACER = object()


class Span:
    def __init__(self):
        # Recording a wall-clock *timestamp* is fine: nothing is
        # differenced, the value is display metadata.
        self.start_ts = time()
        self._started = monotonic()

    def duration(self, loop):
        # Monotonic deltas and loop.time() (asyncio's monotonic clock,
        # a method call, not the time module) are the sanctioned shapes.
        return (monotonic() - self._started) + (loop.time() - loop.time())


def get_logger(name):
    return name


_LOG = get_logger("fixture")


class Handler:
    def _request_span(self, name):
        return self.server.tracer.start_trace(name)

    def do_GET(self):
        with self._request_span("http.GET"):
            self.respond(200)

    def respond(self, status):
        return status


class Pipeline:
    def __init__(self, tracer=None):
        # Constructor-site ternary normalization is the sanctioned shape.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(self, item):
        if self.tracer.enabled:
            self.tracer.record_span("stage.run", 0.0)
        return item


class Probe:
    def __init__(self, tracer):
        self.tracer = tracer

    def debug_dump(self):
        # Cold path, sanctioned by review with an inline waiver.
        if self.tracer is not None:  # lint: disable=REP104
            return self.tracer.recent_traces(5)
        return []
