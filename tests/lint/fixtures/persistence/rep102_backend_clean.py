"""REP102 clean fixture: transactions, contracts, sqlite conn scope."""


class EngineBackend:
    durable = True

    def __init__(self, db):
        self._db = db

    def record_add(self, obj, invalidated):
        with self._db.transaction():
            self._db.upsert("objects", {"object_id": obj.object_id})
            for object_id in invalidated:
                self._db.delete("renderings", object_id)

    def replace_labels(self, object_id, labels):
        """Swap an object's label rows in one transaction of its own.

        Callers get atomicity without opening their own scope.
        """
        self._db.upsert("labels", {"object_id": object_id, "labels": labels})


class SqliteBackend:
    durable = True

    def __init__(self, lock, conn):
        self._lock = lock
        self._conn = conn

    def record_remove(self, object_id, invalidated):
        # ``with self._conn`` opens a sqlite transaction scope.
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM objects WHERE object_id = ?", (object_id,)
            )


class VolatileBackend:
    # Not durable: journal methods are plain dict updates, out of scope.
    durable = False

    def __init__(self, db):
        self._db = db

    def record_add(self, obj, invalidated):
        self._db.upsert("objects", {"object_id": obj.object_id})
