"""REP102 true-positive fixture: journal writes outside a transaction."""


class Backend:
    durable = True

    def __init__(self, db):
        self._db = db

    def record_add(self, obj, invalidated):
        # finding: two mutations, no transaction — a crash between them
        # tears the journal.
        self._db.upsert("objects", {"object_id": obj.object_id})
        for object_id in invalidated:
            self._db.delete("renderings", object_id)

    def record_rendering(self, object_id, fmt, body):
        self._db.upsert("renderings", {"key": f"{object_id}:{fmt}"})  # finding
