"""Engine mechanics: suppressions, fingerprints, scoping, file walking."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.engine import (
    Finding,
    dotted_name,
    iter_source_files,
    load_module,
    run_rules,
    walk_scope,
)
from repro.lint.lock_rules import LockHygieneRule

FIXTURES = Path(__file__).parent / "fixtures"


def _load(tmp_path: Path, source: str, name: str = "mod.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return load_module(path, root=tmp_path)


def _finding(rule: str, line: int) -> Finding:
    return Finding(rule=rule, path="mod.py", line=line, col=0, message="m")


class TestSuppressions:
    def test_same_line_comment_suppresses_that_line(self, tmp_path) -> None:
        module = _load(tmp_path, "x = 1  # lint: disable=REP101\n")
        assert module.is_suppressed(_finding("REP101", 1))
        assert not module.is_suppressed(_finding("REP102", 1))

    def test_standalone_comment_suppresses_next_line(self, tmp_path) -> None:
        module = _load(tmp_path, "# lint: disable=REP103\nx = 1\n")
        assert module.is_suppressed(_finding("REP103", 2))
        assert not module.is_suppressed(_finding("REP103", 1))

    def test_multiple_codes_and_all_wildcard(self, tmp_path) -> None:
        module = _load(
            tmp_path,
            "a = 1  # lint: disable=REP101,REP104\nb = 2  # lint: disable=ALL\n",
        )
        assert module.is_suppressed(_finding("REP101", 1))
        assert module.is_suppressed(_finding("REP104", 1))
        assert not module.is_suppressed(_finding("REP105", 1))
        assert module.is_suppressed(_finding("REP105", 2))

    def test_file_level_suppression(self, tmp_path) -> None:
        module = _load(tmp_path, "# lint: disable-file=REP105\nx = 1\ny = 2\n")
        assert module.is_suppressed(_finding("REP105", 3))
        assert not module.is_suppressed(_finding("REP101", 3))


class TestFinding:
    def test_fingerprint_ignores_line_and_col(self) -> None:
        one = Finding("REP101", "a.py", 10, 4, "msg", context="f")
        two = Finding("REP101", "a.py", 99, 0, "msg", context="f")
        assert one.fingerprint == two.fingerprint

    def test_fingerprint_tracks_identity_fields(self) -> None:
        base = Finding("REP101", "a.py", 1, 0, "msg", context="f")
        assert base.fingerprint != Finding(
            "REP102", "a.py", 1, 0, "msg", context="f"
        ).fingerprint
        assert base.fingerprint != Finding(
            "REP101", "b.py", 1, 0, "msg", context="f"
        ).fingerprint
        assert base.fingerprint != Finding(
            "REP101", "a.py", 1, 0, "other", context="f"
        ).fingerprint

    def test_format_is_path_line_col_rule(self) -> None:
        text = Finding("REP103", "a.py", 3, 7, "leak", context="C.m").format()
        assert text == "a.py:3:7: REP103 leak [C.m]"


class TestAstHelpers:
    def test_dotted_name_resolves_chains_and_calls(self) -> None:
        expr = ast.parse("self._db.transaction()").body[0].value
        assert dotted_name(expr) == "self._db.transaction"
        assert dotted_name(ast.parse("x").body[0].value) == "x"
        assert dotted_name(ast.parse("(a or b).c").body[0].value) is None

    def test_walk_scope_skips_nested_defs(self) -> None:
        tree = ast.parse(
            "def outer():\n"
            "    a = 1\n"
            "    def inner():\n"
            "        b = 2\n"
        )
        names = {
            node.id
            for node in walk_scope(tree.body[0])
            if isinstance(node, ast.Name)
        }
        assert "a" in names
        assert "b" not in names


class TestModuleLoading:
    def test_roles_derive_from_path_parts(self) -> None:
        module = load_module(FIXTURES / "server" / "rep101_bad.py")
        assert "server" in module.roles
        assert "core" not in module.roles

    def test_qualnames_annotate_enclosing_scope(self, tmp_path) -> None:
        module = _load(tmp_path, "class C:\n    def m(self):\n        x = 1\n")
        assign = module.tree.body[0].body[0].body[0]
        assert module.qualname_of(assign) == "C.m"

    def test_iter_source_files_dedups_and_skips_egg_info(self, tmp_path) -> None:
        (tmp_path / "pkg.egg-info").mkdir()
        (tmp_path / "pkg.egg-info" / "junk.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        files = list(iter_source_files([tmp_path, tmp_path / "a.py"]))
        assert [f.name for f in files] == ["a.py"]


class TestRunner:
    def test_run_rules_separates_suppressed(self) -> None:
        findings, suppressed = run_rules(
            [FIXTURES / "server" / "rep101_clean.py"],
            [LockHygieneRule()],
            root=FIXTURES,
        )
        assert findings == []
        assert len(suppressed) == 1
        assert suppressed[0].rule == "REP101"

    def test_findings_sorted_by_location(self) -> None:
        findings, _ = run_rules(
            [FIXTURES / "server" / "rep101_bad.py"],
            [LockHygieneRule()],
            root=FIXTURES,
        )
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )
