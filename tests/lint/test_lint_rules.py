"""Every rule family: >=1 true-positive and >=1 clean/suppressed fixture."""

from __future__ import annotations

from pathlib import Path

from repro.lint import (
    BackendTransactionRule,
    BoundedInListRule,
    CloseOnRaiseRule,
    HandlerSpanRule,
    JournalDisciplineRule,
    LockHygieneRule,
    MonotonicClockRule,
    NullPatternRule,
    PrintBanRule,
    WireAdditivityRule,
)
from repro.lint.engine import run_rules

FIXTURES = Path(__file__).parent / "fixtures"


def _run(rule, *relpaths):
    return run_rules(
        [FIXTURES / rel for rel in relpaths], [rule], root=FIXTURES
    )


class TestLockHygieneREP101:
    def test_flags_sleep_socket_and_storage_io_under_locks(self) -> None:
        findings, _ = _run(LockHygieneRule(), "server/rep101_bad.py")
        blocking = [f.message.split("(")[0] for f in findings]
        assert len(findings) == 3
        assert any("time.sleep" in m for m in blocking)
        assert any("sendall" in m for m in blocking)
        assert any("storage.record_add" in m for m in blocking)

    def test_clean_shapes_pass_and_waiver_is_counted(self) -> None:
        findings, suppressed = _run(LockHygieneRule(), "server/rep101_clean.py")
        assert findings == []
        assert len(suppressed) == 1

    def test_rule_is_scoped_to_server_and_core(self) -> None:
        findings, _ = _run(LockHygieneRule(), "storage/rep103_bad.py")
        assert findings == []


class TestBackendTransactionREP102:
    def test_flags_bare_mutations_in_durable_journal_methods(self) -> None:
        findings, _ = _run(
            BackendTransactionRule(), "persistence/rep102_backend_bad.py"
        )
        contexts = {f.context for f in findings}
        assert len(findings) == 3  # upsert + delete in record_add, upsert
        assert contexts == {
            "Backend.record_add",
            "Backend.record_rendering",
        }

    def test_transactions_contracts_and_volatile_backends_pass(self) -> None:
        findings, _ = _run(
            BackendTransactionRule(), "persistence/rep102_backend_clean.py"
        )
        assert findings == []


class TestJournalDisciplineREP102:
    def test_flags_direct_storage_calls(self) -> None:
        findings, _ = _run(
            JournalDisciplineRule(), "core/rep102_caller_bad.py"
        )
        assert len(findings) == 1
        assert "record_add" in findings[0].message

    def test_journal_lambda_contract_and_waiver_pass(self) -> None:
        findings, suppressed = _run(
            JournalDisciplineRule(), "core/rep102_caller_clean.py"
        )
        assert findings == []
        assert len(suppressed) == 1


class TestCloseOnRaiseREP103:
    def test_flags_leaks_on_raised_paths(self) -> None:
        findings, _ = _run(CloseOnRaiseRule(), "storage/rep103_bad.py")
        contexts = {f.context for f in findings}
        assert contexts == {
            "leaky_open",
            "LeakyBackend.__init__",
            "leaky_after_guard",
        }

    def test_guarded_shapes_pass_and_waiver_is_counted(self) -> None:
        findings, suppressed = _run(CloseOnRaiseRule(), "storage/rep103_clean.py")
        assert findings == []
        assert len(suppressed) == 1


class TestBoundedInListREP103:
    def test_flags_unchunked_interpolated_in_list(self) -> None:
        findings, _ = _run(BoundedInListRule(), "storage/rep103_bad.py")
        assert len(findings) == 1
        assert findings[0].context == "LeakyBackend.invalidate"

    def test_chunked_in_list_passes(self) -> None:
        findings, _ = _run(BoundedInListRule(), "storage/rep103_clean.py")
        assert findings == []


class TestObservabilityREP104:
    RULES = (PrintBanRule, HandlerSpanRule, NullPatternRule, MonotonicClockRule)

    def test_flags_print_spanless_handler_none_chain_and_wall_delta(self) -> None:
        rules = [cls() for cls in self.RULES]
        findings, _ = run_rules(
            [FIXTURES / "server" / "rep104_bad.py"], rules, root=FIXTURES
        )
        names = sorted(f.message.split()[0] for f in findings)
        assert len(findings) == 5
        assert any("print()" in f.message for f in findings), names
        assert any("never opens a span" in f.message for f in findings)
        assert any("NULL_TRACER" in f.message for f in findings)
        wall = [f for f in findings if "time.time()" in f.message]
        assert len(wall) == 2  # module-qualified and bare-imported delta

    def test_clean_shapes_pass_and_waiver_is_counted(self) -> None:
        rules = [cls() for cls in self.RULES]
        findings, suppressed = run_rules(
            [FIXTURES / "server" / "rep104_clean.py"], rules, root=FIXTURES
        )
        assert findings == []
        assert len(suppressed) == 1


class TestWireAdditivityREP105:
    SCHEMA = FIXTURES / "wire_schema_fixture.json"

    def test_flags_dropped_key_and_unknown_surface(self) -> None:
        findings, _ = run_rules(
            [FIXTURES / "server" / "wire_drop" / "server.py"],
            [WireAdditivityRule(schema_path=self.SCHEMA)],
            root=FIXTURES,
        )
        assert len(findings) == 2
        dropped = next(f for f in findings if "dropped" in f.message)
        assert "pong" in dropped.message
        unknown = next(f for f in findings if "not in the schema" in f.message)
        assert "_sneaky" in unknown.message

    def test_matching_surface_passes_and_waiver_is_counted(self) -> None:
        findings, suppressed = run_rules(
            [FIXTURES / "server" / "wire_ok" / "server.py"],
            [WireAdditivityRule(schema_path=self.SCHEMA)],
            root=FIXTURES,
        )
        assert findings == []
        assert len(suppressed) == 1
