"""Tests for the comparison linkers."""

import pytest

from repro.baselines.exact import build_lexical_linker
from repro.baselines.random_pick import RandomPickLinker
from repro.baselines.semiauto import SemiAutoLinker
from repro.baselines.tfidf import TfIdfIndex, TfIdfLinker
from repro.corpus.planetmath_sample import GRAPH_ID, SET_GRAPH_ID, sample_corpus
from repro.ontology.msc import build_small_msc


class TestLexical:
    def test_no_steering_no_policies(self) -> None:
        linker = build_lexical_linker(sample_corpus(), scheme=build_small_msc())
        assert not linker.enable_steering
        assert not linker.enable_policies
        doc = linker.link_text("the graph", source_classes=["03E20"])
        # Ignores classes entirely; lowest id wins the homonym.
        assert [l.target_id for l in doc.links] == [min(GRAPH_ID, SET_GRAPH_ID)]

    def test_policy_ignored(self) -> None:
        linker = build_lexical_linker(sample_corpus(), scheme=build_small_msc())
        doc = linker.link_text("even so", source_classes=["05C99"])
        assert any(l.source_phrase == "even" for l in doc.links)


class TestTfIdf:
    def test_index_similarity_orders_related_texts(self) -> None:
        index = TfIdfIndex()
        index.add_document(1, "graph vertex edge graph connected")
        index.add_document(2, "graph vertex edge cycle")
        index.add_document(3, "measure integral lebesgue")
        assert index.similarity(1, 2) > index.similarity(1, 3)

    def test_self_similarity_maximal(self) -> None:
        index = TfIdfIndex()
        index.add_document(1, "alpha beta gamma")
        index.add_document(2, "alpha delta")
        assert index.similarity(1, 1) == pytest.approx(1.0)

    def test_remove_document(self) -> None:
        index = TfIdfIndex()
        index.add_document(1, "alpha beta")
        index.remove_document(1)
        assert index.similarity(1, 1) == 0.0
        assert len(index) == 0

    def test_linker_produces_links(self) -> None:
        linker = TfIdfLinker(sample_corpus())
        doc = linker.link_object(1)  # plane graph entry
        assert doc.link_count >= 3

    def test_homonym_resolved_by_text_similarity(self) -> None:
        linker = TfIdfLinker(sample_corpus())
        # The 'connected components' entry talks about graphs/subgraphs,
        # so similarity should pick the graph-theory homonym.
        doc = linker.link_object(4)
        graph_links = [l for l in doc.links if l.source_phrase.lower().startswith("graph")]
        if graph_links:
            assert graph_links[0].target_id in (GRAPH_ID, SET_GRAPH_ID)

    def test_external_text_without_source_uses_first_candidate(self) -> None:
        linker = TfIdfLinker(sample_corpus())
        doc = linker.link_text("the graph here")
        assert doc.link_count == 1


class TestRandomPick:
    def test_deterministic_for_seed(self) -> None:
        a = RandomPickLinker(sample_corpus(), seed=3).link_object(1)
        b = RandomPickLinker(sample_corpus(), seed=3).link_object(1)
        assert [l.target_id for l in a.links] == [l.target_id for l in b.links]

    def test_picks_only_candidates(self) -> None:
        linker = RandomPickLinker(sample_corpus(), seed=1)
        doc = linker.link_text("the graph")
        assert doc.links[0].target_id in (GRAPH_ID, SET_GRAPH_ID)


class TestSemiAuto:
    def test_unique_label_resolves(self) -> None:
        linker = SemiAutoLinker(sample_corpus(), author_effort=1.0)
        outcome = linker.link_entry(["planar graph"])
        assert outcome.resolved == {("planar", "graph"): 2}

    def test_homonym_becomes_disambiguation(self) -> None:
        linker = SemiAutoLinker(sample_corpus(), author_effort=1.0)
        outcome = linker.link_entry(["graph"])
        assert outcome.disambiguation == [("graph",)]
        assert outcome.resolved == {}

    def test_unknown_phrase_is_broken_link(self) -> None:
        linker = SemiAutoLinker(sample_corpus(), author_effort=1.0)
        outcome = linker.link_entry(["nonexistent concept"])
        assert outcome.broken == [("nonexistent", "concept")]

    def test_author_effort_limits_recall(self) -> None:
        linker = SemiAutoLinker(sample_corpus(), author_effort=0.0, seed=1)
        outcome = linker.link_entry(["planar graph", "tree"])
        assert outcome.link_count == 0
        assert len(outcome.unmarked) == 2

    def test_exclusion(self) -> None:
        linker = SemiAutoLinker(sample_corpus(), author_effort=1.0)
        outcome = linker.link_entry(["planar graph"], exclude=2)
        assert outcome.broken == [("planar", "graph")]

    def test_invalid_effort_rejected(self) -> None:
        with pytest.raises(ValueError):
            SemiAutoLinker(sample_corpus(), author_effort=1.5)
