"""The paper's worked examples, end to end on the handcrafted corpus.

Fig. 1: the plane-graph entry whose "graph" must steer to the
graph-theory homonym; Fig. 3: the concept map shape; Fig. 4: the MSC
distance comparison; Section 2.4: the "even" policy.
"""

from repro.core.linker import NNexus
from repro.core.render import render_annotations
from repro.corpus.planetmath_sample import (
    GRAPH_ID,
    PLANE_GRAPH_ID,
    SET_GRAPH_ID,
    sample_corpus,
)
from repro.ontology.msc import build_small_msc

import pytest


@pytest.fixture(scope="module")
def linker() -> NNexus:
    instance = NNexus(scheme=build_small_msc())
    instance.add_objects(sample_corpus())
    return instance


class TestFig1:
    def test_plane_graph_entry_links(self, linker: NNexus) -> None:
        document = linker.link_object(PLANE_GRAPH_ID)
        targets = {link.source_phrase.lower(): link.target_id for link in document.links}
        assert targets["planar graph"] == 2
        assert targets["plane"] == 3
        assert targets["connected components"] == 4
        # The homonym: source is 05C10, so graph steers to 05C99 not 03E20.
        assert targets["graph"] == GRAPH_ID

    def test_set_theory_context_steers_to_set_graph(self, linker: NNexus) -> None:
        document = linker.link_text(
            "the graph records the pairs of the mapping",
            source_classes=["03E20"],
        )
        by_phrase = {l.source_phrase: l.target_id for l in document.links}
        assert by_phrase["graph"] == SET_GRAPH_ID

    def test_annotated_rendering_readable(self, linker: NNexus) -> None:
        document = linker.link_object(PLANE_GRAPH_ID)
        annotated = render_annotations(document)
        assert f"planar graph[->2]" in annotated


class TestFig3ConceptMapShape:
    def test_chained_hash_structure(self, linker: NNexus) -> None:
        chain = linker.concept_map.chain_for("graph")
        assert chain is not None
        assert ("graph",) in chain.labels
        # Both homonymous definers share the chain entry.
        assert chain.labels[("graph",)] >= {GRAPH_ID, SET_GRAPH_ID}

    def test_multiword_labels_keyed_by_first_word(self, linker: NNexus) -> None:
        chain = linker.concept_map.chain_for("connected")
        assert chain is not None
        assert ("connected", "component") in chain.labels


class TestFig4Distances:
    def test_paper_distance_ordering(self, linker: NNexus) -> None:
        steering = linker.steering
        assert steering is not None
        d_within = steering.graph.distance("05C40", "05C99")
        d_across = steering.graph.distance("05C40", "03E20")
        assert d_within < d_across

    def test_connectivity_and_topological_closer_than_sections(self, linker: NNexus) -> None:
        graph = linker.steering.graph
        assert graph.distance("05C10", "05C40") < graph.distance("05C", "05B")


class TestSection24Policies:
    def test_even_not_linked_from_graph_theory(self, linker: NNexus) -> None:
        document = linker.link_text(
            "an even number of vertices", source_classes=["05C99"]
        )
        phrases = [l.source_phrase for l in document.links]
        # "even number" as a full phrase is a legitimate concept label;
        # but the bare word "even" from a non-number-theory source is not.
        bare_even = linker.link_text("even so, the result holds",
                                     source_classes=["05C99"])
        assert all(l.source_phrase.lower() != "even" for l in bare_even.links)
        del phrases

    def test_even_linked_from_number_theory(self, linker: NNexus) -> None:
        document = linker.link_text("when n is even", source_classes=["11A41"])
        assert any(l.source_phrase == "even" for l in document.links)


class TestCorpusWideRecall:
    def test_every_entry_produces_links(self, linker: NNexus) -> None:
        """The sample corpus is densely interlinked; most entries link out."""
        linked_entries = sum(
            1 for oid in linker.object_ids() if linker.link_object(oid).link_count > 0
        )
        assert linked_entries >= 25

    def test_no_link_ever_targets_its_own_source(self, linker: NNexus) -> None:
        for object_id in linker.object_ids():
            document = linker.link_object(object_id)
            assert all(link.target_id != object_id for link in document.links)
