"""Tests for the rendered-entry cache."""

from repro.core.cache import RenderCache


class TestBasics:
    def test_put_get(self) -> None:
        cache = RenderCache()
        cache.put(1, "<p>x</p>")
        assert cache.get(1) == "<p>x</p>"
        assert cache.hits == 1

    def test_miss_on_absent(self) -> None:
        cache = RenderCache()
        assert cache.get(1) is None
        assert cache.misses == 1

    def test_version_increments(self) -> None:
        cache = RenderCache()
        first = cache.put(1, "a")
        second = cache.put(1, "b")
        assert first.version == 1
        assert second.version == 2

    def test_len_and_clear(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        cache.put(2, "b")
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestInvalidation:
    def test_invalidate_marks_dirty(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        flipped = cache.invalidate([1])
        assert flipped == 1
        assert cache.get(1) is None
        assert cache.invalid_ids() == [1]
        assert not cache.is_valid(1)

    def test_invalidate_absent_id_ignored(self) -> None:
        cache = RenderCache()
        assert cache.invalidate([42]) == 0

    def test_invalidate_already_dirty_not_double_counted(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        cache.invalidate([1])
        assert cache.invalidate([1]) == 0
        assert cache.invalidations == 1

    def test_put_revalidates(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        cache.invalidate([1])
        cache.put(1, "b")
        assert cache.get(1) == "b"
        assert cache.invalid_ids() == []


class TestGetOrRender:
    def test_renders_on_miss_then_serves_cached(self) -> None:
        cache = RenderCache()
        calls: list[int] = []

        def render(object_id: int) -> str:
            calls.append(object_id)
            return f"render-{object_id}"

        assert cache.get_or_render(1, render) == "render-1"
        assert cache.get_or_render(1, render) == "render-1"
        assert calls == [1]

    def test_rerenders_after_invalidation(self) -> None:
        cache = RenderCache()
        counter = {"n": 0}

        def render(object_id: int) -> str:
            counter["n"] += 1
            return f"v{counter['n']}"

        assert cache.get_or_render(1, render) == "v1"
        cache.invalidate([1])
        assert cache.get_or_render(1, render) == "v2"

    def test_drop(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        cache.drop(1)
        assert cache.get(1) is None
        assert len(cache) == 0


class TestFormatKeying:
    def test_formats_are_independent_slots(self) -> None:
        cache = RenderCache()
        cache.put(1, "<a>x</a>")  # DEFAULT_FORMAT == "html"
        cache.put(1, "[x]", fmt="markdown")
        assert cache.get(1) == "<a>x</a>"
        assert cache.get(1, fmt="markdown") == "[x]"
        assert len(cache) == 2
        assert cache.formats_for(1) == {"html", "markdown"}

    def test_miss_in_one_format_does_not_touch_the_other(self) -> None:
        cache = RenderCache()
        cache.put(1, "<a>x</a>")
        assert cache.get(1, fmt="annotations") is None
        assert cache.get(1) == "<a>x</a>"

    def test_versions_tracked_per_format(self) -> None:
        cache = RenderCache()
        assert cache.put(1, "a").version == 1
        assert cache.put(1, "m", fmt="markdown").version == 1
        assert cache.put(1, "b").version == 2

    def test_invalidate_dirties_every_format(self) -> None:
        cache = RenderCache()
        cache.put(1, "h")
        cache.put(1, "m", fmt="markdown")
        flipped = cache.invalidate([1])
        assert flipped == 2
        assert not cache.is_valid(1)
        assert not cache.is_valid(1, fmt="markdown")
        assert cache.invalid_ids() == [1]
        assert cache.invalid_keys() == [(1, "html"), (1, "markdown")]

    def test_drop_removes_every_format(self) -> None:
        cache = RenderCache()
        cache.put(1, "h")
        cache.put(1, "m", fmt="markdown")
        cache.drop(1)
        assert len(cache) == 0
        assert cache.formats_for(1) == frozenset()

    def test_get_or_render_caches_non_html(self) -> None:
        cache = RenderCache()
        calls: list[str] = []

        def render(object_id: int) -> str:
            calls.append("render")
            return "md"

        assert cache.get_or_render(1, render, fmt="markdown") == "md"
        assert cache.get_or_render(1, render, fmt="markdown") == "md"
        assert calls == ["render"]

    def test_counter_snapshot(self) -> None:
        cache = RenderCache()
        cache.put(1, "h")
        cache.get(1)
        cache.get(2)
        cache.invalidate([1])
        snapshot = cache.counter_snapshot()
        assert snapshot == {"hits": 1, "misses": 1, "invalidations": 1, "entries": 1}
