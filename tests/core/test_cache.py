"""Tests for the rendered-entry cache."""

from repro.core.cache import RenderCache


class TestBasics:
    def test_put_get(self) -> None:
        cache = RenderCache()
        cache.put(1, "<p>x</p>")
        assert cache.get(1) == "<p>x</p>"
        assert cache.hits == 1

    def test_miss_on_absent(self) -> None:
        cache = RenderCache()
        assert cache.get(1) is None
        assert cache.misses == 1

    def test_version_increments(self) -> None:
        cache = RenderCache()
        first = cache.put(1, "a")
        second = cache.put(1, "b")
        assert first.version == 1
        assert second.version == 2

    def test_len_and_clear(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        cache.put(2, "b")
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestInvalidation:
    def test_invalidate_marks_dirty(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        flipped = cache.invalidate([1])
        assert flipped == 1
        assert cache.get(1) is None
        assert cache.invalid_ids() == [1]
        assert not cache.is_valid(1)

    def test_invalidate_absent_id_ignored(self) -> None:
        cache = RenderCache()
        assert cache.invalidate([42]) == 0

    def test_invalidate_already_dirty_not_double_counted(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        cache.invalidate([1])
        assert cache.invalidate([1]) == 0
        assert cache.invalidations == 1

    def test_put_revalidates(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        cache.invalidate([1])
        cache.put(1, "b")
        assert cache.get(1) == "b"
        assert cache.invalid_ids() == []


class TestGetOrRender:
    def test_renders_on_miss_then_serves_cached(self) -> None:
        cache = RenderCache()
        calls: list[int] = []

        def render(object_id: int) -> str:
            calls.append(object_id)
            return f"render-{object_id}"

        assert cache.get_or_render(1, render) == "render-1"
        assert cache.get_or_render(1, render) == "render-1"
        assert calls == [1]

    def test_rerenders_after_invalidation(self) -> None:
        cache = RenderCache()
        counter = {"n": 0}

        def render(object_id: int) -> str:
            counter["n"] += 1
            return f"v{counter['n']}"

        assert cache.get_or_render(1, render) == "v1"
        cache.invalidate([1])
        assert cache.get_or_render(1, render) == "v2"

    def test_drop(self) -> None:
        cache = RenderCache()
        cache.put(1, "a")
        cache.drop(1)
        assert cache.get(1) is None
        assert len(cache) == 0
