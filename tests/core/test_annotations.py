"""Tests for Web Annotation (JSON-LD) export/import."""

import json

import pytest

from repro.core.annotations import (
    annotations_to_json,
    document_to_annotations,
    links_from_annotations,
)
from repro.core.errors import NNexusError
from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


@pytest.fixture(scope="module")
def document():
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())
    return linker.link_text(
        "Every planar graph has connected components and a tree inside.",
        source_classes=["05C10"],
    )


class TestExport:
    def test_one_annotation_per_link(self, document) -> None:
        annotations = document_to_annotations(document)
        assert len(annotations) == document.link_count
        for annotation in annotations:
            assert annotation["type"] == "Annotation"
            assert annotation["motivation"] == "linking"

    def test_selectors_anchor_correctly(self, document) -> None:
        for annotation in document_to_annotations(document):
            items = annotation["target"]["selector"]["items"]
            position = next(i for i in items if i["type"] == "TextPositionSelector")
            quote = next(i for i in items if i["type"] == "TextQuoteSelector")
            exact = document.source_text[position["start"] : position["end"]]
            assert exact == quote["exact"]

    def test_body_carries_target_metadata(self, document) -> None:
        annotation = document_to_annotations(document)[0]
        assert annotation["body"]["nnexus:targetObject"] == document.links[0].target_id

    def test_collection_json(self, document) -> None:
        payload = json.loads(annotations_to_json(document, source_iri="urn:x:doc"))
        assert payload["type"] == "AnnotationCollection"
        assert payload["total"] == document.link_count
        assert payload["items"][0]["id"].startswith("urn:x:doc/annotations/")

    def test_empty_document(self) -> None:
        from repro.core.models import LinkedDocument

        payload = json.loads(annotations_to_json(LinkedDocument(source_text="x")))
        assert payload["total"] == 0


class TestRoundTrip:
    def test_links_reconstructed(self, document) -> None:
        payload = annotations_to_json(document)
        rebuilt = links_from_annotations(payload, document.source_text)
        original = sorted(document.links, key=lambda l: l.char_start)
        assert [(l.char_start, l.char_end, l.target_id) for l in rebuilt] == [
            (l.char_start, l.char_end, l.target_id) for l in original
        ]
        assert [l.source_phrase for l in rebuilt] == [
            l.source_phrase for l in original
        ]

    def test_changed_text_detected(self, document) -> None:
        payload = annotations_to_json(document)
        tampered = document.source_text.replace("planar", "triangular")
        with pytest.raises(NNexusError):
            links_from_annotations(payload, tampered)

    def test_out_of_range_span_rejected(self, document) -> None:
        payload = json.loads(annotations_to_json(document))
        items = payload["items"]
        selector = items[0]["target"]["selector"]["items"][0]
        selector["end"] = 10_000
        with pytest.raises(NNexusError):
            links_from_annotations(items, document.source_text)

    def test_missing_position_selector_rejected(self, document) -> None:
        payload = json.loads(annotations_to_json(document))
        items = payload["items"]
        items[0]["target"]["selector"] = {}
        with pytest.raises(NNexusError):
            links_from_annotations(items, document.source_text)
