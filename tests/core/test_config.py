"""Tests for domain configuration and its XML round trip."""

import pytest

from repro.core.config import DomainConfig, NNexusConfig
from repro.core.errors import ProtocolError, UnknownDomainError


class TestDomainConfig:
    def test_url_template(self) -> None:
        domain = DomainConfig(
            name="planetmath",
            url_template="https://planetmath.org/{title}?id={object_id}",
        )
        assert domain.url_for(7, "Planar Graph") == (
            "https://planetmath.org/Planar-Graph?id=7"
        )

    def test_slug_collapses_punctuation(self) -> None:
        domain = DomainConfig(name="d", url_template="{title}")
        assert domain.url_for(1, "graph (set theory)") == "graph-set-theory"

    def test_empty_title_slug(self) -> None:
        domain = DomainConfig(name="d", url_template="{title}")
        assert domain.url_for(1, "") == "entry"


class TestNNexusConfig:
    def test_default_domain_created(self) -> None:
        config = NNexusConfig()
        assert config.domain("default").name == "default"

    def test_unknown_domain_raises(self) -> None:
        with pytest.raises(UnknownDomainError):
            NNexusConfig().domain("nope")

    def test_add_domain_and_priority(self) -> None:
        config = NNexusConfig()
        config.add_domain(DomainConfig(name="mw", priority=2))
        assert config.priority_of("mw") == 2


class TestXmlRoundTrip:
    def test_round_trip(self) -> None:
        config = NNexusConfig(
            domains={
                "planetmath": DomainConfig(
                    "planetmath", "https://planetmath.org/{title}", "msc", 1
                ),
                "mathworld": DomainConfig(
                    "mathworld", "https://mathworld.wolfram.com/{title}.html", "msc", 2
                ),
            },
            default_domain="planetmath",
            base_weight=5.0,
            allow_self_links=True,
        )
        parsed = NNexusConfig.from_xml(config.to_xml())
        assert parsed.default_domain == "planetmath"
        assert parsed.base_weight == 5.0
        assert parsed.allow_self_links
        assert parsed.domains["mathworld"].priority == 2
        assert parsed.domains["planetmath"].url_template == (
            "https://planetmath.org/{title}"
        )

    def test_parse_example_document(self) -> None:
        xml = (
            '<nnexus defaultdomain="planetmath" baseweight="10">'
            '<domain name="planetmath" priority="1" scheme="msc" '
            'urltemplate="https://planetmath.org/{title}"/>'
            "</nnexus>"
        )
        config = NNexusConfig.from_xml(xml)
        assert config.default_domain == "planetmath"
        assert config.domains["planetmath"].scheme == "msc"

    def test_bad_xml_raises(self) -> None:
        with pytest.raises(ProtocolError):
            NNexusConfig.from_xml("<nnexus")

    def test_wrong_root_raises(self) -> None:
        with pytest.raises(ProtocolError):
            NNexusConfig.from_xml("<other/>")

    def test_domain_without_name_raises(self) -> None:
        with pytest.raises(ProtocolError):
            NNexusConfig.from_xml("<nnexus><domain priority='1'/></nnexus>")

    def test_escape_patterns_round_trip(self) -> None:
        config = NNexusConfig(
            extra_escape_patterns=[("template", r"\{\{[^}]*\}\}")]
        )
        parsed = NNexusConfig.from_xml(config.to_xml())
        assert parsed.extra_escape_patterns == [("template", r"\{\{[^}]*\}\}")]

    def test_escape_without_pattern_raises(self) -> None:
        with pytest.raises(ProtocolError):
            NNexusConfig.from_xml("<nnexus><escape name='x'/></nnexus>")


class TestCustomEscapeRules:
    def test_linker_honours_extra_escapes(self) -> None:
        from repro.core.linker import NNexus
        from repro.core.models import CorpusObject
        from repro.ontology.msc import build_small_msc

        config = NNexusConfig(
            extra_escape_patterns=[("template", r"\{\{[^}]*\}\}")]
        )
        linker = NNexus(scheme=build_small_msc(), config=config)
        linker.add_object(
            CorpusObject(5, "graph", defines=["graph"], classes=["05C99"], text="")
        )
        doc = linker.link_text(
            "a {{infobox graph}} but the graph itself links",
            source_classes=["05C99"],
        )
        assert doc.link_count == 1
        assert doc.links[0].char_start > 20  # the templated one was skipped
