"""Tests for the adaptive invalidation index (Section 2.5, Fig. 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.invalidation import InvalidationIndex


class TestFig6Example:
    """The paper's worked example: 'conjugacy class formula'."""

    def build(self) -> InvalidationIndex:
        index = InvalidationIndex(max_phrase_length=4, phrase_threshold=2)
        # Objects 123 and 456 mention 'conjugacy' in other contexts;
        # object 789 contains the full phrase.  The phrase bigram/trigram
        # appears twice (789 uses it twice) so it clears the threshold.
        index.index_object(123, "the conjugacy relation holds here")
        index.index_object(456, "a conjugacy argument shows the result")
        index.index_object(
            789,
            "the conjugacy class formula states much; this conjugacy "
            "class formula is central",
        )
        return index

    def test_phrase_lookup_hits_only_true_container(self) -> None:
        index = self.build()
        assert index.invalidate("conjugacy class formula") == {789}

    def test_word_lookup_would_overinvalidate(self) -> None:
        index = self.build()
        assert index.invalidate("conjugacy") == {123, 456, 789}

    def test_unknown_phrase_falls_back_to_prefix(self) -> None:
        index = self.build()
        # 4-gram never indexed; falls back to the indexed 3-gram.
        assert index.invalidate("conjugacy class formula theorem") == {789}


class TestAdaptiveRule:
    def test_rare_phrase_not_promoted(self) -> None:
        index = InvalidationIndex(phrase_threshold=3)
        index.index_object(1, "rare phrase here")
        # Bigram count 1 < 3: lookup falls back to the single word.
        index.index_object(2, "rare stuff elsewhere")
        assert index.invalidate("rare phrase") == {1, 2}

    def test_frequent_phrase_promoted(self) -> None:
        index = InvalidationIndex(phrase_threshold=2)
        index.index_object(1, "magic lattice magic lattice")
        index.index_object(2, "magic elsewhere")
        assert index.invalidate("magic lattice") == {1}

    def test_single_words_always_indexed(self) -> None:
        index = InvalidationIndex(phrase_threshold=100)
        index.index_object(1, "unique token")
        assert index.invalidate("unique") == {1}

    def test_max_phrase_length_caps_probe(self) -> None:
        index = InvalidationIndex(max_phrase_length=2, phrase_threshold=1)
        index.index_object(1, "alpha beta gamma delta")
        assert index.invalidate("alpha beta gamma") == {1}

    def test_invalid_parameters(self) -> None:
        with pytest.raises(ValueError):
            InvalidationIndex(max_phrase_length=0)
        with pytest.raises(ValueError):
            InvalidationIndex(phrase_threshold=0)


class TestMaintenance:
    def test_reindex_replaces_old_text(self) -> None:
        index = InvalidationIndex()
        index.index_object(1, "old words here")
        index.index_object(1, "completely different now")
        assert index.invalidate("old") == set()
        assert index.invalidate("different") == {1}

    def test_remove_object(self) -> None:
        index = InvalidationIndex()
        index.index_object(1, "shared words")
        index.index_object(2, "shared other")
        index.remove_object(1)
        assert index.invalidate("shared") == {2}
        assert index.object_count == 1

    def test_remove_unknown_is_noop(self) -> None:
        index = InvalidationIndex()
        index.remove_object(99)
        assert index.object_count == 0

    def test_invalidate_many_unions(self) -> None:
        index = InvalidationIndex()
        index.index_object(1, "alpha things")
        index.index_object(2, "beta things")
        assert index.invalidate_many(["alpha", "beta"]) == {1, 2}

    def test_morphology_applied_to_text_and_query(self) -> None:
        index = InvalidationIndex()
        index.index_object(1, "planar graphs are nice")
        assert index.invalidate("Planar Graph") == {1}

    def test_escaped_math_not_indexed(self) -> None:
        index = InvalidationIndex()
        index.index_object(1, "see $hidden token$ outside")
        assert index.invalidate("hidden") == set()
        assert index.invalidate("outside") == {1}


class TestStats:
    def test_size_ratio_bounded(self) -> None:
        index = InvalidationIndex(phrase_threshold=2)
        texts = [
            "planar graph theory is fun",
            "planar graph coloring is fun",
            "planar graph theory again",
        ]
        for object_id, text in enumerate(texts):
            index.index_object(object_id, text)
        stats = index.stats()
        assert stats.word_keys > 0
        assert stats.total_keys >= stats.word_keys
        # The Zipf fall-off claim: phrase keys stay within a small factor.
        assert stats.size_ratio_vs_word_index < 4.0

    def test_empty_index_stats(self) -> None:
        stats = InvalidationIndex().stats()
        assert stats.total_keys == 0
        assert stats.size_ratio_vs_word_index == 0.0


words = st.lists(st.sampled_from("alpha beta gamma delta epsilon".split()), min_size=1, max_size=30)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.integers(0, 8), words, min_size=1, max_size=8))
def test_prefix_closure_never_misses(texts: dict[int, list[str]]) -> None:
    """The index's guarantee: every object containing a phrase is returned.

    For any n-gram actually present in some object's text, `invalidate`
    must return a superset of the objects containing that n-gram.
    """
    index = InvalidationIndex(max_phrase_length=3, phrase_threshold=2)
    for object_id, tokens in texts.items():
        index.index_object(object_id, " ".join(tokens))
    for object_id, tokens in texts.items():
        for start in range(len(tokens)):
            for length in (1, 2, 3):
                if start + length > len(tokens):
                    continue
                gram = tokens[start : start + length]
                result = index.invalidate(" ".join(gram))
                assert object_id in result


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.integers(0, 5), words, min_size=2, max_size=6))
def test_remove_then_lookup_excludes_object(texts: dict[int, list[str]]) -> None:
    index = InvalidationIndex(max_phrase_length=3)
    for object_id, tokens in texts.items():
        index.index_object(object_id, " ".join(tokens))
    victim = next(iter(texts))
    index.remove_object(victim)
    for tokens in texts.values():
        for token in tokens:
            assert victim not in index.invalidate(token)
