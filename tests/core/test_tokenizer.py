"""Tests for text scanning: escaping and tokenization."""

from hypothesis import given, strategies as st

from repro.core.tokenizer import Tokenizer


def tokenize(text: str):
    return Tokenizer().tokenize(text)


class TestEscaping:
    def test_inline_math_not_tokenized(self) -> None:
        result = tokenize("the graph $G = (V, E)$ is planar")
        assert "g" not in result.canonical_words()
        assert result.canonical_words() == ["the", "graph", "is", "planar"]

    def test_display_math(self) -> None:
        result = tokenize("before $$x graphs y$$ after")
        assert result.canonical_words() == ["before", "after"]

    def test_latex_environment(self) -> None:
        text = "intro \\begin{align} graphs \\end{align} outro"
        assert tokenize(text).canonical_words() == ["intro", "outro"]

    def test_existing_anchor_escaped(self) -> None:
        text = 'see <a href="x">planar graph</a> here'
        assert tokenize(text).canonical_words() == ["see", "here"]

    def test_html_tag_escaped_but_content_kept(self) -> None:
        text = "<em>planar graph</em>"
        assert tokenize(text).canonical_words() == ["planar", "graph"]

    def test_code_fence(self) -> None:
        text = "code ```graph = {}``` end"
        assert tokenize(text).canonical_words() == ["code", "end"]

    def test_inline_code(self) -> None:
        assert tokenize("use `graph` here").canonical_words() == ["use", "here"]

    def test_url_escaped(self) -> None:
        result = tokenize("visit https://planetmath.org/graphs today")
        assert result.canonical_words() == ["visit", "today"]

    def test_escaped_regions_recorded(self) -> None:
        result = tokenize("a $x$ b $y$ c")
        assert len(result.escaped_regions) == 2

    def test_adjacent_math_merged_regions_ordered(self) -> None:
        result = tokenize("$a$$b$ word")
        spans = result.escaped_regions
        assert spans == sorted(spans)


class TestTokens:
    def test_offsets_recover_surface(self) -> None:
        text = "The Planar Graphs are nice."
        result = tokenize(text)
        for token in result.tokens:
            assert text[token.char_start : token.char_end] == token.surface

    def test_canonical_forms(self) -> None:
        result = tokenize("Graphs vertices Möbius's")
        assert result.canonical_words() == ["graph", "vertex", "mobius"]

    def test_surface_between(self) -> None:
        text = "a planar graph here"
        result = tokenize(text)
        assert result.surface_between(1, 3) == "planar graph"
        assert result.surface_between(2, 2) == ""

    def test_len_and_iter(self) -> None:
        result = tokenize("one two three")
        assert len(result) == 3
        assert [t.surface for t in result] == ["one", "two", "three"]

    def test_apostrophes_inside_words(self) -> None:
        result = tokenize("euler's formula")
        assert result.canonical_words() == ["euler", "formula"]

    def test_empty_text(self) -> None:
        result = tokenize("")
        assert len(result) == 0
        assert result.escaped_regions == []


@given(st.text(max_size=300))
def test_token_spans_ordered_and_disjoint(text: str) -> None:
    result = tokenize(text)
    previous_end = -1
    for token in result.tokens:
        assert 0 <= token.char_start < token.char_end <= len(text)
        assert token.char_start >= previous_end
        previous_end = token.char_end


@given(st.text(max_size=300))
def test_tokens_never_inside_escaped_regions(text: str) -> None:
    result = tokenize(text)
    for token in result.tokens:
        for start, end in result.escaped_regions:
            assert token.char_end <= start or token.char_start >= end


@given(st.lists(st.sampled_from(["graph", "planar", "$x$", "the", "`c`"]), max_size=20))
def test_word_count_stable_under_spacing(parts: list[str]) -> None:
    single = Tokenizer().tokenize(" ".join(parts))
    double = Tokenizer().tokenize("  ".join(parts))
    assert single.canonical_words() == double.canonical_words()
