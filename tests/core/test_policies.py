"""Tests for linking policies (Section 2.4, Fig. 5)."""

import pytest

from repro.core.errors import PolicyParseError
from repro.core.policies import LinkingPolicy, LinkingPolicyTable, parse_policy
from repro.ontology.msc import build_small_msc


class TestParsing:
    def test_simple_directives(self) -> None:
        directives = parse_policy("forbid even\npermit even 11\n")
        assert len(directives) == 2
        assert directives[0].action == "forbid"
        assert directives[0].concept == ("even",)
        assert directives[0].classes == ()
        assert directives[1].action == "permit"
        assert directives[1].classes == ("11",)

    def test_wildcard(self) -> None:
        directives = parse_policy("forbid * 03E")
        assert directives[0].concept is None
        assert directives[0].is_wildcard

    def test_comments_and_blanks_ignored(self) -> None:
        directives = parse_policy("# a comment\n\nforbid even  # trailing\n")
        assert len(directives) == 1

    def test_quoted_multiword_concept(self) -> None:
        directives = parse_policy('forbid "even number" 11 26')
        assert directives[0].concept == ("even", "number")
        assert directives[0].classes == ("11", "26")

    def test_concept_canonicalized(self) -> None:
        directives = parse_policy("forbid Graphs")
        assert directives[0].concept == ("graph",)

    def test_class_codes_normalized(self) -> None:
        directives = parse_policy("permit even 11-XX")
        assert directives[0].classes == ("11",)

    def test_unknown_action_raises(self) -> None:
        with pytest.raises(PolicyParseError):
            parse_policy("deny even")

    def test_missing_concept_raises(self) -> None:
        with pytest.raises(PolicyParseError):
            parse_policy("forbid")

    def test_unterminated_quote_raises(self) -> None:
        with pytest.raises(PolicyParseError):
            parse_policy('forbid "even number')

    def test_empty_quoted_concept_raises(self) -> None:
        with pytest.raises(PolicyParseError):
            parse_policy('forbid ""')


class TestEvaluation:
    def test_forbid_then_permit_for_category(self) -> None:
        """The paper's canonical example: 'even' only from number theory."""
        policy = LinkingPolicy.from_text("forbid even\npermit even 11\n")
        scheme = build_small_msc()
        assert not policy.allows(("even",), ["05C40"], scheme)
        assert policy.allows(("even",), ["11A05"], scheme)
        assert policy.allows(("even",), ["05C40", "11A41"], scheme)

    def test_default_permit(self) -> None:
        policy = LinkingPolicy.from_text("forbid even\n")
        assert policy.allows(("odd",), ["05C40"])

    def test_last_match_wins(self) -> None:
        policy = LinkingPolicy.from_text("permit even\nforbid even\n")
        assert not policy.allows(("even",), ["11A05"])

    def test_wildcard_applies_to_all_concepts(self) -> None:
        policy = LinkingPolicy.from_text("forbid * 03E\n")
        assert not policy.allows(("anything",), ["03E20"], build_small_msc())
        assert policy.allows(("anything",), ["05C40"], build_small_msc())

    def test_prefix_fallback_without_scheme(self) -> None:
        policy = LinkingPolicy.from_text("forbid even\npermit even 11\n")
        assert policy.allows(("even",), ["11A05"], None)
        assert not policy.allows(("even",), ["05C40"], None)

    def test_unclassified_source_hits_unscoped_directives_only(self) -> None:
        policy = LinkingPolicy.from_text("forbid even\npermit even 11\n")
        # No classes: the permit (scoped to 11) cannot match; forbid does.
        assert not policy.allows(("even",), [])


class TestPolicyTable:
    def test_set_and_filter(self) -> None:
        scheme = build_small_msc()
        table = LinkingPolicyTable(scheme=scheme)
        table.set_policy(7, "forbid even\npermit even 11\n")
        assert table.allows(7, ("even",), ["11A05"])
        assert not table.allows(7, ("even",), ["05C40"])
        # Unpolicied targets always allow.
        assert table.allows(8, ("even",), ["05C40"])

    def test_filter_candidates(self) -> None:
        table = LinkingPolicyTable()
        table.set_policy(7, "forbid even\n")
        assert table.filter_candidates([7, 8], ("even",), ["05C40"]) == (8,)

    def test_empty_policy_removes(self) -> None:
        table = LinkingPolicyTable()
        table.set_policy(7, "forbid even\n")
        table.set_policy(7, "   ")
        assert table.policy_for(7) is None
        assert len(table) == 0

    def test_raw_policy_round_trip(self) -> None:
        table = LinkingPolicyTable()
        text = "forbid even\npermit even 11\n"
        table.set_policy(7, text)
        assert table.raw_policy(7) == text
        assert table.raw_policy(99) == ""

    def test_remove(self) -> None:
        table = LinkingPolicyTable()
        table.set_policy(7, "forbid even\n")
        table.remove(7)
        assert table.object_ids() == []

    def test_bad_policy_raises_at_set_time(self) -> None:
        table = LinkingPolicyTable()
        with pytest.raises(PolicyParseError):
            table.set_policy(7, "frobnicate everything")
