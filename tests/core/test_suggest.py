"""Tests for automatic linking-policy suggestion."""

import pytest

from repro.core.suggest import PolicySuggester
from repro.corpus.generator import GeneratorParams, generate_corpus
from repro.eval.experiments import build_linker
from repro.eval.metrics import score_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(GeneratorParams(n_entries=500, seed=31))


class TestDetection:
    def test_flags_common_word_culprits(self, corpus) -> None:
        suggester = PolicySuggester(min_usages=6, max_home_share=0.5)
        suggestions = suggester.suggest(corpus.objects)
        flagged_ids = {s.object_id for s in suggestions}
        culprit_ids = set(corpus.common_word_objects.values())
        # High detector precision: no ordinary concepts flagged.
        assert flagged_ids <= culprit_ids
        # Substantial recall: most culprits found.
        assert len(flagged_ids) >= len(culprit_ids) // 2

    def test_policy_text_shape(self, corpus) -> None:
        from repro.core.policies import parse_policy

        suggester = PolicySuggester(min_usages=6, max_home_share=0.5)
        for suggestion in suggester.suggest(corpus.objects):
            directives = parse_policy(suggestion.policy_text)
            assert directives[0].action == "forbid"
            assert directives[1].action == "permit"
            assert directives[1].classes == (suggestion.home_area,)

    def test_sorted_by_dispersion(self, corpus) -> None:
        suggester = PolicySuggester(min_usages=6, max_home_share=0.5)
        suggestions = suggester.suggest(corpus.objects)
        shares = [s.home_share for s in suggestions]
        assert shares == sorted(shares)

    def test_min_usages_filters(self, corpus) -> None:
        strict = PolicySuggester(min_usages=10_000)
        assert strict.suggest(corpus.objects) == []

    def test_empty_corpus(self) -> None:
        assert PolicySuggester().suggest([]) == []


class TestApplication:
    def test_auto_policies_raise_precision_keep_recall(self, corpus) -> None:
        linker = build_linker(corpus, with_policies=False)
        before = score_corpus(linker, corpus.objects, corpus.ground_truth)
        suggester = PolicySuggester(min_usages=6, max_home_share=0.5)
        applied = suggester.apply(linker, suggester.suggest(corpus.objects))
        assert applied > 0
        after = score_corpus(linker, corpus.objects, corpus.ground_truth)
        assert after.precision > before.precision
        assert after.recall == 1.0

    def test_apply_skips_unknown_objects(self, corpus) -> None:
        linker = build_linker(corpus.subset(50, seed=1))
        suggester = PolicySuggester(min_usages=6, max_home_share=0.5)
        suggestions = suggester.suggest(corpus.objects)
        applied = suggester.apply(linker, suggestions)
        assert applied <= len(suggestions)
