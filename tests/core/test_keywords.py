"""Tests for automatic keyword (concept-label) extraction."""

from repro.core.keywords import KeywordExtractor, extract_keywords
from repro.core.models import CorpusObject
from repro.corpus.planetmath_sample import sample_corpus


MARKOV_TEXT = (
    "A Markov chain is a stochastic process with the Markov property. "
    "The transition matrix of a Markov chain collects the transition "
    "probabilities, and the stationary distribution of the chain solves "
    "a fixed point equation involving the transition matrix."
)


class TestExtract:
    def test_multiword_terms_beat_stopwords(self) -> None:
        candidates = extract_keywords(MARKOV_TEXT, top_k=8)
        texts = [c.text for c in candidates]
        assert any("markov chain" in t for t in texts)
        assert any("transition matrix" in t for t in texts)
        for text in texts:
            assert "the" not in text.split()

    def test_scores_descending(self) -> None:
        candidates = extract_keywords(MARKOV_TEXT)
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_occurrences_counted(self) -> None:
        candidates = extract_keywords(MARKOV_TEXT, top_k=20)
        by_text = {c.text: c for c in candidates}
        assert by_text["markov chain"].occurrences >= 2

    def test_canonicalized_output(self) -> None:
        candidates = extract_keywords("Planar Graphs and planar graphs", top_k=3)
        assert candidates[0].words == ("planar", "graph")

    def test_empty_text(self) -> None:
        assert extract_keywords("") == []
        assert extract_keywords("the of and") == []

    def test_math_not_extracted(self) -> None:
        candidates = extract_keywords("compute $secret formula$ openly", top_k=10)
        assert all("secret" not in c.text for c in candidates)

    def test_phrase_length_capped(self) -> None:
        extractor = KeywordExtractor(max_phrase_length=2)
        text = "alpha beta gamma delta epsilon"
        for candidate in extractor.extract(text, top_k=10):
            assert len(candidate.words) <= 2


class TestCorpusStatistics:
    def test_rarity_demotes_ubiquitous_phrases(self) -> None:
        extractor = KeywordExtractor()
        corpus = [
            CorpusObject(i, f"t{i}", text="filler common phrase everywhere graph")
            for i in range(20)
        ]
        corpus.append(CorpusObject(99, "rare", text="unique matroid duality appears"))
        extractor.observe_corpus(corpus)
        candidates = extractor.extract(
            "unique matroid duality appears near common phrase everywhere",
            top_k=4,
        )
        texts = [c.text for c in candidates]
        assert texts.index(next(t for t in texts if "matroid" in t)) < len(texts)
        # The corpus-wide phrase is scored below the rare one.
        rare_score = max(c.score for c in candidates if "matroid" in c.text)
        common = [c for c in candidates if "common" in c.text]
        if common:
            assert common[0].score < rare_score

    def test_stop_concepts_detected(self) -> None:
        extractor = KeywordExtractor()
        corpus = [
            CorpusObject(i, f"t{i}", text=f"graph appears always with topic{i}")
            for i in range(10)
        ]
        extractor.observe_corpus(corpus)
        stop_concepts = extractor.corpus_stop_concepts(min_document_share=0.5)
        assert ("graph",) in stop_concepts
        assert all(len(phrase) == 1 for phrase in stop_concepts)

    def test_stop_concepts_empty_without_corpus(self) -> None:
        assert KeywordExtractor().corpus_stop_concepts() == []


class TestSuggestLabels:
    def test_declared_labels_filtered(self) -> None:
        extractor = KeywordExtractor()
        obj = CorpusObject(
            1,
            "Markov chain",
            defines=["Markov chain"],
            text=MARKOV_TEXT,
        )
        suggestions = extractor.suggest_labels(obj, top_k=5)
        assert all(c.words != ("markov", "chain") for c in suggestions)
        assert any("transition matrix" in c.text for c in suggestions)

    def test_suggestions_on_sample_corpus(self) -> None:
        extractor = KeywordExtractor()
        corpus = sample_corpus()
        extractor.observe_corpus(corpus)
        by_id = {obj.object_id: obj for obj in corpus}
        suggestions = extractor.suggest_labels(by_id[20], top_k=5)  # Markov chain
        assert suggestions
