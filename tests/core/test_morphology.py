"""Unit and property tests for morphological canonicalization."""

import pytest
from hypothesis import given, strategies as st

from repro.core.morphology import (
    canonicalize_encoding,
    canonicalize_phrase,
    canonicalize_token,
    singularize,
    strip_possessive,
)


class TestSingularize:
    @pytest.mark.parametrize(
        ("plural", "singular"),
        [
            ("graphs", "graph"),
            ("vertices", "vertex"),
            ("matrices", "matrix"),
            ("theories", "theory"),
            ("classes", "class"),
            ("boxes", "box"),
            ("branches", "branch"),
            ("wishes", "wish"),
            ("halves", "half"),
            ("knives", "knife"),
            ("children", "child"),
            ("lemmata", "lemma"),
            ("radii", "radius"),
            ("heroes", "hero"),
            ("foci", "focus"),
            ("bases", "basis"),
            ("indices", "index"),
        ],
    )
    def test_plural_to_singular(self, plural: str, singular: str) -> None:
        assert singularize(plural) == singular

    @pytest.mark.parametrize(
        "word",
        ["series", "analysis", "calculus", "modulus", "torus", "class",
         "locus", "basis", "lens", "this", "gauss", "genus"],
    )
    def test_protected_singulars_unchanged(self, word: str) -> None:
        assert singularize(word) == word

    def test_short_tokens_unchanged(self) -> None:
        assert singularize("is") == "is"
        assert singularize("as") == "as"
        assert singularize("xs") == "xs"

    def test_non_alpha_tail_unchanged(self) -> None:
        assert singularize("x2s1") == "x2s1"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12))
    def test_idempotent(self, word: str) -> None:
        once = singularize(word)
        assert singularize(once) == once


class TestPossessive:
    def test_apostrophe_s(self) -> None:
        assert strip_possessive("euler's") == "euler"

    def test_unicode_apostrophe(self) -> None:
        assert strip_possessive("euler’s") == "euler"

    def test_trailing_apostrophe(self) -> None:
        assert strip_possessive("graphs'") == "graphs"

    def test_plain_word_unchanged(self) -> None:
        assert strip_possessive("euler") == "euler"


class TestEncoding:
    def test_diacritics_folded(self) -> None:
        assert canonicalize_encoding("Möbius") == "mobius"
        assert canonicalize_encoding("Erdős") == "erdos"
        assert canonicalize_encoding("Poincaré") == "poincare"

    def test_casefold(self) -> None:
        assert canonicalize_encoding("ABELIAN") == "abelian"

    @given(st.text(max_size=20))
    def test_idempotent(self, text: str) -> None:
        once = canonicalize_encoding(text)
        assert canonicalize_encoding(once) == once


class TestCanonicalToken:
    def test_combined_transformations(self) -> None:
        assert canonicalize_token("Möbius's") == "mobius"
        assert canonicalize_token("Graphs") == "graph"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyzÀÁÖöüé'", min_size=1, max_size=15))
    def test_idempotent(self, token: str) -> None:
        once = canonicalize_token(token)
        assert canonicalize_token(once) == once


class TestCanonicalPhrase:
    def test_multiword(self) -> None:
        assert canonicalize_phrase("Planar Graphs") == ("planar", "graph")

    def test_hyphen_splits(self) -> None:
        assert canonicalize_phrase("three-colorable") == ("three", "colorable")

    def test_empty(self) -> None:
        assert canonicalize_phrase("") == ()
        assert canonicalize_phrase("   ") == ()

    def test_plural_possessive_unicode_together(self) -> None:
        assert canonicalize_phrase("Möbius's graphs") == ("mobius", "graph")

    def test_name_endings_symmetric(self) -> None:
        # Names ending in -os are treated like plurals; what matters for
        # linking is that label and text canonicalize identically.
        assert canonicalize_phrase("Erdős's graphs") == canonicalize_phrase(
            "erdos graph"
        )
