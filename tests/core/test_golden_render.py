"""Golden-output test for the full linking pipeline.

The steering fast path (interned ids, LCA tree walks, the signature
cache) must be *behaviour-preserving*: every rendering of the sample
corpus stays byte-for-byte identical to the pre-optimization output.
The checked-in digest below was produced by the original per-pair
string/Dijkstra implementation; any linking or rendering change that
alters even one byte fails here and must update the digest knowingly.
"""

import hashlib

from repro.core.batch import BatchLinker
from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc

#: SHA-256 over every (object, format) rendering of the sample corpus,
#: computed before the steering fast path landed.
GOLDEN_SHA256 = "dea25fd426bab8e66ba27d82d455045bf7bed944df4f67d180e787af2e60d231"

_FORMATS = ("html", "markdown", "annotations")


def build_linker() -> NNexus:
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())
    return linker


def corpus_digest(renderings: dict[int, dict[str, str]]) -> str:
    digest = hashlib.sha256()
    for object_id in sorted(renderings):
        for fmt in _FORMATS:
            rendered = renderings[object_id][fmt]
            digest.update(f"{object_id}:{fmt}:".encode() + rendered.encode() + b"\x00")
    return digest.hexdigest()


def test_sample_corpus_renders_match_golden() -> None:
    linker = build_linker()
    renderings = {
        object_id: {fmt: linker.render_object(object_id, fmt=fmt) for fmt in _FORMATS}
        for object_id in linker.object_ids()
    }
    assert corpus_digest(renderings) == GOLDEN_SHA256


def test_process_mode_batch_matches_golden() -> None:
    linker = build_linker()
    renderings: dict[int, dict[str, str]] = {
        object_id: {} for object_id in linker.object_ids()
    }
    for fmt in _FORMATS:
        report = BatchLinker(linker, fmt=fmt, mode="process", workers=2).run()
        for object_id, rendered in report.rendered.items():
            renderings[object_id][fmt] = rendered
    assert corpus_digest(renderings) == GOLDEN_SHA256


def test_signature_cache_disabled_matches_golden() -> None:
    linker = build_linker()
    # Rebuild steering with the memo off: decisions must not change.
    from repro.core.classification import ClassificationSteering

    linker._steering = ClassificationSteering(
        linker.steering.graph, signature_cache_size=0
    )
    renderings = {
        object_id: {fmt: linker.render_object(object_id, fmt=fmt) for fmt in _FORMATS}
        for object_id in linker.object_ids()
    }
    assert corpus_digest(renderings) == GOLDEN_SHA256
