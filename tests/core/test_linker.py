"""Tests for the NNexus façade: the full pipeline of Fig. 2."""

import pytest

from repro.core.config import DomainConfig, NNexusConfig
from repro.core.errors import DuplicateObjectError, NNexusError, UnknownObjectError
from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.ontology.msc import build_small_msc


def fig1_linker(**kwargs) -> NNexus:
    linker = NNexus(scheme=build_small_msc(), **kwargs)
    linker.add_objects(
        [
            CorpusObject(2, "planar graph", defines=["planar graph"],
                         classes=["05C10"], text="Embeds in the plane."),
            CorpusObject(5, "graph", defines=["graph"], synonyms=["graphs"],
                         classes=["05C99"], text="Vertices and edges."),
            CorpusObject(6, "graph (set theory)", defines=["graph"],
                         classes=["03E20"], text="Set of ordered pairs."),
            CorpusObject(9, "connected components", defines=["connected component"],
                         classes=["05C40"], text="Maximal connected subgraphs."),
        ]
    )
    return linker


class TestCorpusMaintenance:
    def test_duplicate_object_rejected(self) -> None:
        linker = fig1_linker()
        with pytest.raises(DuplicateObjectError):
            linker.add_object(CorpusObject(5, "dup", defines=["dup"]))

    def test_unknown_object_raises(self) -> None:
        with pytest.raises(UnknownObjectError):
            fig1_linker().get_object(404)
        with pytest.raises(UnknownObjectError):
            fig1_linker().remove_object(404)

    def test_remove_unindexes_labels(self) -> None:
        linker = fig1_linker()
        linker.remove_object(2)
        doc = linker.link_text("a planar graph here", source_classes=["05C10"])
        # "planar graph" gone; bare "graph" still matches.
        assert [l.target_id for l in doc.links] == [5]

    def test_update_object_replaces(self) -> None:
        linker = fig1_linker()
        linker.update_object(
            CorpusObject(2, "planar graph", defines=["outerplanar graph"],
                         classes=["05C10"], text="changed")
        )
        doc = linker.link_text("an outerplanar graph", source_classes=["05C10"])
        assert [l.target_id for l in doc.links] == [2]

    def test_object_ids_and_len(self) -> None:
        linker = fig1_linker()
        assert linker.object_ids() == [2, 5, 6, 9]
        assert len(linker) == 4
        assert linker.has_object(5)
        assert not linker.has_object(50)


class TestLinking:
    def test_steering_resolves_homonym(self) -> None:
        linker = fig1_linker()
        doc = linker.link_text("the graph is connected", source_classes=["05C40"])
        assert [l.target_id for l in doc.links] == [5]
        doc = linker.link_text("the graph of a pairing", source_classes=["03E20"])
        assert [l.target_id for l in doc.links] == [6]

    def test_self_link_excluded(self) -> None:
        linker = fig1_linker()
        linker.update_object(
            CorpusObject(5, "graph", defines=["graph"], classes=["05C99"],
                         text="A graph is a pair of vertex sets.")
        )
        doc = linker.link_object(5)
        # 'graph' may only link to the set-theory homonym, never itself.
        assert all(link.target_id != 5 for link in doc.links)

    def test_self_link_allowed_when_configured(self) -> None:
        config = NNexusConfig(allow_self_links=True)
        linker = NNexus(scheme=build_small_msc(), config=config)
        linker.add_object(
            CorpusObject(5, "graph", defines=["graph"], classes=["05C99"],
                         text="A graph is a graph.")
        )
        doc = linker.link_object(5)
        assert [l.target_id for l in doc.links] == [5]

    def test_first_occurrence_only(self) -> None:
        linker = fig1_linker()
        doc = linker.link_text("graph graph graph", source_classes=["05C99"])
        assert doc.link_count == 1

    def test_every_occurrence_when_configured(self) -> None:
        config = NNexusConfig(link_first_occurrence_only=False)
        linker = NNexus(scheme=build_small_msc(), config=config)
        linker.add_object(CorpusObject(5, "graph", defines=["graph"],
                                       classes=["05C99"], text=""))
        doc = linker.link_text("graph then graph", source_classes=["05C99"])
        assert doc.link_count == 2

    def test_link_spans_match_source_text(self) -> None:
        linker = fig1_linker()
        text = "every planar graph has connected components"
        doc = linker.link_text(text, source_classes=["05C10"])
        for link in doc.links:
            assert text[link.char_start : link.char_end] == link.source_phrase

    def test_no_steering_falls_back_to_lowest_id(self) -> None:
        linker = fig1_linker(enable_steering=False)
        doc = linker.link_text("the graph", source_classes=["03E20"])
        assert [l.target_id for l in doc.links] == [5]  # min id, not steered

    def test_unclassified_source_still_links(self) -> None:
        linker = fig1_linker()
        doc = linker.link_text("a planar graph")
        assert doc.link_count == 1

    def test_stats_accumulate(self) -> None:
        linker = fig1_linker()
        linker.link_text("a planar graph", source_classes=["05C10"])
        snapshot = linker.stats.snapshot()
        assert snapshot["entries_linked"] == 1
        assert snapshot["links_created"] == 1


class TestPolicies:
    def test_policy_blocks_link(self) -> None:
        linker = fig1_linker()
        linker.add_object(
            CorpusObject(7, "even number", defines=["even number", "even"],
                         classes=["11A05"], text="Divisible by two.",
                         linking_policy="forbid even\npermit even 11\n")
        )
        outside = linker.link_text("an even split", source_classes=["05C99"])
        assert outside.link_count == 0
        inside = linker.link_text("an even integer", source_classes=["11A41"])
        assert [l.target_id for l in inside.links] == [7]

    def test_policy_ignored_when_disabled(self) -> None:
        linker = fig1_linker(enable_policies=False)
        linker.add_object(
            CorpusObject(7, "even number", defines=["even"], classes=["11A05"],
                         text="", linking_policy="forbid even\n")
        )
        doc = linker.link_text("even here", source_classes=["05C99"])
        assert doc.link_count == 1

    def test_policy_never_written_through_to_caller_objects(self) -> None:
        """Two linkers sharing CorpusObject instances must not leak state."""
        shared = CorpusObject(7, "even number", defines=["even"],
                              classes=["11A05"], text="")
        first = fig1_linker()
        first.add_object(shared)
        first.set_linking_policy(7, "forbid even\n")
        assert shared.linking_policy == ""  # caller's object untouched
        second = fig1_linker()
        second.add_object(shared)
        doc = second.link_text("even", source_classes=["05C99"])
        assert doc.link_count == 1  # no policy leaked into the new linker

    def test_set_linking_policy_after_add(self) -> None:
        linker = fig1_linker()
        linker.add_object(CorpusObject(7, "even number", defines=["even"],
                                       classes=["11A05"], text=""))
        assert linker.link_text("even", source_classes=["05C99"]).link_count == 1
        linker.set_linking_policy(7, "forbid even\n")
        assert linker.link_text("even", source_classes=["05C99"]).link_count == 0
        assert linker.get_object(7).linking_policy == "forbid even\n"


class TestTieBreaking:
    def test_priority_breaks_ties(self) -> None:
        config = NNexusConfig(
            domains={
                "pm": DomainConfig("pm", priority=1),
                "mw": DomainConfig("mw", priority=2),
            },
            default_domain="pm",
        )
        linker = NNexus(scheme=build_small_msc(), config=config)
        linker.add_object(CorpusObject(10, "tree", defines=["tree"],
                                       classes=["05C05"], domain="mw", text=""))
        linker.add_object(CorpusObject(20, "tree", defines=["tree"],
                                       classes=["05C05"], domain="pm", text=""))
        doc = linker.link_text("a tree", source_classes=["05C05"])
        # Same class distance; pm (priority 1) wins despite higher id.
        assert [l.target_id for l in doc.links] == [20]
        assert linker.stats.ties_broken_by_priority == 1

    def test_id_breaks_remaining_ties(self) -> None:
        linker = NNexus(scheme=build_small_msc())
        linker.add_object(CorpusObject(30, "tree", defines=["tree"],
                                       classes=["05C05"], text=""))
        linker.add_object(CorpusObject(10, "tree", defines=["tree"],
                                       classes=["05C05"], text=""))
        doc = linker.link_text("a tree", source_classes=["05C05"])
        assert [l.target_id for l in doc.links] == [10]


class TestRankerIntegration:
    def test_ranker_overrides_steering(self) -> None:
        from repro.core.ranking import CompositeRanker, ReputationTable

        linker = fig1_linker()
        reputation = ReputationTable()
        for __ in range(50):
            reputation.record_feedback(6, helpful=True)
            reputation.record_feedback(5, helpful=False)
        # Heavy reputation weight flips the homonym away from steering.
        linker.set_ranker(
            CompositeRanker(
                steering=linker.steering,
                reputation=reputation,
                class_weight=0.0,
                reputation_weight=10.0,
            )
        )
        doc = linker.link_text("the graph", source_classes=["05C40"])
        assert [l.target_id for l in doc.links] == [6]

    def test_detaching_ranker_restores_steering(self) -> None:
        from repro.core.ranking import CompositeRanker

        linker = fig1_linker()
        linker.set_ranker(CompositeRanker(steering=linker.steering))
        linker.set_ranker(None)
        doc = linker.link_text("the graph", source_classes=["05C40"])
        assert [l.target_id for l in doc.links] == [5]

    def test_default_composite_ranker_agrees_with_steering(self) -> None:
        from repro.core.ranking import CompositeRanker

        plain = fig1_linker()
        ranked = fig1_linker()
        ranked.set_ranker(CompositeRanker(steering=ranked.steering))
        for classes in (["05C40"], ["03E20"], ["11A41"]):
            text = "the graph and a planar graph"
            a = plain.link_text(text, source_classes=classes)
            b = ranked.link_text(text, source_classes=classes)
            assert [l.target_id for l in a.links] == [l.target_id for l in b.links]

    def test_policies_still_apply_with_ranker(self) -> None:
        from repro.core.ranking import CompositeRanker

        linker = fig1_linker()
        linker.add_object(
            CorpusObject(7, "even number", defines=["even"], classes=["11A05"],
                         text="", linking_policy="forbid even\n")
        )
        linker.set_ranker(CompositeRanker(steering=linker.steering))
        doc = linker.link_text("even now", source_classes=["05C99"])
        assert doc.link_count == 0


class TestInvalidationFlow:
    def test_new_concept_invalidates_probable_invokers(self) -> None:
        linker = fig1_linker()
        for object_id in linker.object_ids():
            linker.render_object(object_id)
        invalidated = linker.add_object(
            CorpusObject(42, "vertex", defines=["vertex", "vertices"],
                         classes=["05C99"], text="Unit of a graph.")
        )
        assert 5 in invalidated  # object 5's text mentions "vertices"
        assert 2 not in invalidated
        assert 5 in linker.invalid_entries()

    def test_relink_invalidated_refreshes(self) -> None:
        linker = fig1_linker()
        for object_id in linker.object_ids():
            linker.render_object(object_id)
        linker.add_object(
            CorpusObject(42, "vertex", defines=["vertex", "vertices"],
                         classes=["05C99"], text="Unit of a graph.")
        )
        refreshed = linker.relink_invalidated()
        assert 5 in refreshed
        assert "#object-42" in refreshed[5]
        assert linker.invalid_entries() == []

    def test_remove_object_invalidates_linkers_to_it(self) -> None:
        linker = fig1_linker()
        linker.render_object(9)  # links "connected" etc.
        invalidated = linker.remove_object(2)
        assert isinstance(invalidated, set)


class TestRendering:
    def test_render_formats(self) -> None:
        linker = fig1_linker()
        linker.update_object(
            CorpusObject(9, "connected components", defines=["connected component"],
                         classes=["05C40"], text="Pieces of a graph.")
        )
        html = linker.render_object(9, fmt="html")
        assert "<a " in html
        markdown = linker.render_object(9, fmt="markdown")
        assert "](" in markdown
        annotated = linker.render_object(9, fmt="annotations")
        assert "[->" in annotated

    def test_unknown_format_raises(self) -> None:
        with pytest.raises(ValueError):
            fig1_linker().render_object(9, fmt="docx")

    def test_html_render_served_from_cache(self) -> None:
        linker = fig1_linker()
        linker.render_object(9)
        hits_before = linker.cache.hits
        linker.render_object(9)
        assert linker.cache.hits == hits_before + 1


class TestBaseWeight:
    def test_set_base_weight_changes_distances(self) -> None:
        linker = fig1_linker()
        linker.set_base_weight(1.0)
        doc = linker.link_text("the graph", source_classes=["05C40"])
        assert doc.link_count == 1  # still resolves

    def test_set_base_weight_without_scheme_raises(self) -> None:
        linker = NNexus(scheme=None)
        with pytest.raises(NNexusError):
            linker.set_base_weight(2.0)

    def test_describe(self) -> None:
        info = fig1_linker().describe()
        assert info["objects"] == 4
        # planar graph, graph, graph set theory (title), connected component
        assert info["concepts"] == 4
