"""Tests for the core data model."""

import pytest

from repro.core.models import (
    ConceptLabel,
    CorpusObject,
    Link,
    LinkedDocument,
    normalize_object_ids,
    spans_overlap,
)


class TestConceptLabel:
    def test_properties(self) -> None:
        label = ConceptLabel(words=("planar", "graph"), raw="Planar Graphs", object_id=2)
        assert label.first_word == "planar"
        assert label.length == 2
        assert label.text == "planar graph"

    def test_empty_words_rejected(self) -> None:
        with pytest.raises(ValueError):
            ConceptLabel(words=(), raw="", object_id=1)


class TestCorpusObject:
    def test_concept_phrases_union(self) -> None:
        obj = CorpusObject(
            object_id=1,
            title="graph",
            defines=["graph", "simple graph"],
            synonyms=["graphs"],
        )
        assert obj.concept_phrases() == ["graph", "simple graph", "graphs"]

    def test_concept_phrases_deduplicate_case_insensitively(self) -> None:
        obj = CorpusObject(object_id=1, title="Graph", defines=["graph"])
        assert obj.concept_phrases() == ["Graph"]

    def test_blank_phrases_dropped(self) -> None:
        obj = CorpusObject(object_id=1, title="  ", defines=["x", ""])
        assert obj.concept_phrases() == ["x"]


class TestLinkedDocument:
    def test_targets_in_order(self) -> None:
        doc = LinkedDocument(
            source_text="ab cd",
            links=[Link("ab", 1, "d", 0, 2), Link("cd", 2, "d", 3, 5)],
        )
        assert doc.targets() == [1, 2]
        assert doc.link_count == 2

    def test_link_span_property(self) -> None:
        link = Link("x", 1, "d", 3, 8)
        assert link.span == (3, 8)


class TestHelpers:
    def test_normalize_object_ids_dedupes_preserving_order(self) -> None:
        assert normalize_object_ids([3, 1, 3, 2, 1]) == (3, 1, 2)

    def test_spans_overlap(self) -> None:
        assert spans_overlap((0, 5), (4, 9))
        assert not spans_overlap((0, 5), (5, 9))
        assert spans_overlap((2, 3), (0, 10))
