"""Tests for the chained-hash concept map (Fig. 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.concept_map import ConceptChain, ConceptMap


def build_map(entries: list[tuple[str, int]]) -> ConceptMap:
    concept_map = ConceptMap()
    concept_map.bulk_load(entries)
    return concept_map


class TestAddAndLookup:
    def test_owner_lookup(self) -> None:
        cmap = build_map([("planar graph", 2), ("graph", 5), ("graph", 6)])
        assert cmap.owners("graph") == frozenset({5, 6})
        assert cmap.owners("planar graph") == frozenset({2})

    def test_canonicalization_applied(self) -> None:
        cmap = build_map([("Planar Graphs", 2)])
        assert cmap.owners("planar graph") == frozenset({2})
        assert "planar graphs" in cmap

    def test_empty_phrase_rejected(self) -> None:
        cmap = ConceptMap()
        assert cmap.add_phrase("  ", 1) is None
        assert len(cmap) == 0

    def test_len_counts_distinct_labels(self) -> None:
        cmap = build_map([("graph", 5), ("graph", 6), ("tree", 7)])
        assert len(cmap) == 2
        assert cmap.first_word_count == 2

    def test_labels_for_object(self) -> None:
        cmap = build_map([("graph", 5), ("simple graph", 5)])
        assert cmap.labels_for_object(5) == frozenset({("graph",), ("simple", "graph")})

    def test_concept_labels_iteration(self) -> None:
        cmap = build_map([("graph", 5), ("graph", 6)])
        pairs = {(label.text, label.object_id) for label in cmap.concept_labels()}
        assert pairs == {("graph", 5), ("graph", 6)}


class TestLongestMatch:
    def test_prefers_longest(self) -> None:
        cmap = build_map(
            [("orthogonal", 1), ("function", 2), ("orthogonal function", 3)]
        )
        words = ["an", "orthogonal", "function", "here"]
        match = cmap.longest_match(words, 1)
        assert match is not None
        label, owners = match
        assert label == ("orthogonal", "function")
        assert owners == frozenset({3})

    def test_falls_back_to_shorter(self) -> None:
        cmap = build_map([("orthogonal", 1), ("orthogonal function", 3)])
        words = ["orthogonal", "basis"]
        match = cmap.longest_match(words, 0)
        assert match is not None
        assert match[0] == ("orthogonal",)

    def test_no_match(self) -> None:
        cmap = build_map([("graph", 5)])
        assert cmap.longest_match(["tree"], 0) is None

    def test_match_at_end_of_text(self) -> None:
        cmap = build_map([("planar graph", 2)])
        assert cmap.longest_match(["planar"], 0) is None
        match = cmap.longest_match(["planar", "graph"], 0)
        assert match is not None


class TestRemoval:
    def test_remove_reports_vanished_labels(self) -> None:
        cmap = build_map([("graph", 5), ("graph", 6), ("tree", 5)])
        vanished = cmap.remove_object(5)
        assert vanished == {("tree",)}
        assert cmap.owners("graph") == frozenset({6})
        assert cmap.owners("tree") == frozenset()

    def test_remove_unknown_object_is_noop(self) -> None:
        cmap = build_map([("graph", 5)])
        assert cmap.remove_object(99) == set()
        assert cmap.owners("graph") == frozenset({5})

    def test_bucket_cleaned_up(self) -> None:
        cmap = build_map([("graph", 5)])
        cmap.remove_object(5)
        assert cmap.first_word_count == 0
        assert len(cmap) == 0


class TestChainLengthIndex:
    def test_by_length_is_distinct_and_descending(self) -> None:
        cmap = build_map(
            [("graph", 5), ("graph theory", 5), ("graph minor theorem", 7),
             ("graph coloring", 8)]
        )
        chain = cmap.chain_for("graph")
        assert chain.by_length == [3, 2, 1]  # distinct lengths, longest first
        assert chain.lengths_descending() == chain.by_length
        assert chain.longest() == 3

    def test_by_length_shrinks_on_removal(self) -> None:
        cmap = build_map(
            [("graph", 5), ("graph theory", 5), ("graph minor theorem", 7)]
        )
        cmap.remove_object(7)
        chain = cmap.chain_for("graph")
        assert chain.by_length == [2, 1]
        assert chain.longest() == 2

    def test_shared_length_survives_one_owner_leaving(self) -> None:
        # Two distinct 2-word labels: dropping one keeps length 2 listed.
        cmap = build_map([("graph theory", 5), ("graph minor", 7), ("graph", 5)])
        cmap.remove_object(7)
        assert cmap.chain_for("graph").by_length == [2, 1]

    def test_empty_chain_reports_zero(self) -> None:
        assert ConceptChain().longest() == 0
        assert ConceptChain().by_length == []

    def test_removing_unknown_length_raises(self) -> None:
        # Underflow used to be silently ignored, letting the length
        # index drift out of sync with ``labels``; it is now an error.
        chain = ConceptChain()
        with pytest.raises(ValueError, match="no label of length 3"):
            chain._note_label_removed(3)
        chain._note_label_added(2)
        chain._note_label_removed(2)
        with pytest.raises(ValueError, match="no label of length 2"):
            chain._note_label_removed(2)
        assert chain.by_length == []
        assert chain._length_counts == {}


class TestProbeLongest:
    def test_accept_none_falls_through_to_shorter(self) -> None:
        cmap = build_map([("graph theory", 5), ("graph", 6)])
        words = ("graph", "theory")
        hits: list[tuple[str, ...]] = []

        def accept(label_words, owners):
            hits.append(label_words)
            return None  # reject everything; probe must keep descending

        assert cmap.probe_longest(words, 0, accept) is None
        assert hits == [("graph", "theory"), ("graph",)]

    def test_first_non_none_result_wins(self) -> None:
        cmap = build_map([("graph theory", 5), ("graph", 6)])
        result = cmap.probe_longest(
            ("graph", "theory"), 0, lambda label_words, owners: len(label_words)
        )
        assert result == 2

    def test_labels_longer_than_remaining_text_skipped(self) -> None:
        cmap = build_map([("graph minor theorem", 5), ("graph", 6)])
        result = cmap.longest_match(("a", "graph", "minor"), 1)
        assert result == (("graph",), frozenset({6}))

    def test_unindexed_first_word_is_none(self) -> None:
        cmap = build_map([("graph", 5)])
        assert cmap.probe_longest(("tree",), 0, lambda *a: a) is None


class TestStats:
    def test_stats_shape(self) -> None:
        cmap = build_map([("graph", 5), ("graph theory", 5), ("tree", 7)])
        stats = cmap.stats()
        assert stats["labels"] == 3
        assert stats["buckets"] == 2
        assert stats["objects"] == 2
        assert stats["max_chain"] == 2


phrases = st.lists(
    st.tuples(
        st.text(alphabet="abcdefg ", min_size=1, max_size=12).filter(str.strip),
        st.integers(min_value=1, max_value=50),
    ),
    max_size=30,
)


@given(phrases)
def test_every_added_phrase_is_findable(entries: list[tuple[str, int]]) -> None:
    cmap = ConceptMap()
    indexed = []
    for phrase, object_id in entries:
        words = cmap.add_phrase(phrase, object_id)
        if words is not None:
            indexed.append((phrase, object_id))
    for phrase, object_id in indexed:
        assert object_id in cmap.owners(phrase)


@given(phrases)
def test_remove_object_removes_all_its_labels(entries: list[tuple[str, int]]) -> None:
    cmap = ConceptMap()
    for phrase, object_id in entries:
        cmap.add_phrase(phrase, object_id)
    object_ids = {object_id for __, object_id in entries}
    for object_id in object_ids:
        cmap.remove_object(object_id)
    assert len(cmap) == 0
    assert cmap.object_count == 0


churn_ops = st.lists(
    st.tuples(
        st.booleans(),  # True = add the entry, False = remove its object
        st.text(alphabet="abcdefg ", min_size=1, max_size=12).filter(str.strip),
        st.integers(min_value=1, max_value=8),
    ),
    max_size=40,
)


@given(churn_ops)
def test_churn_keeps_length_index_consistent(ops) -> None:
    """Random add/remove interleaving: the incrementally maintained
    ``by_length`` of every chain must equal a from-scratch rebuild of
    the surviving labels (the invariant the underflow fix protects).
    """
    cmap = ConceptMap()
    for is_add, phrase, object_id in ops:
        if is_add:
            cmap.add_phrase(phrase, object_id)
        else:
            cmap.remove_object(object_id)
    rebuilt = ConceptMap()
    for label in cmap.concept_labels():
        rebuilt.add_canonical(label.words, label.object_id)
    assert {
        first_word: chain.by_length for first_word, chain in cmap._chains.items()
    } == {
        first_word: chain.by_length for first_word, chain in rebuilt._chains.items()
    }
    for chain in cmap._chains.values():
        lengths = sorted({len(words) for words in chain.labels}, reverse=True)
        assert chain.by_length == lengths
        assert chain._length_counts == {
            length: sum(1 for words in chain.labels if len(words) == length)
            for length in lengths
        }
