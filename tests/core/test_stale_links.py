"""Regression tests for stale links after ``remove_object``.

The bug: ``remove_object`` used to invalidate only labels that vanished
from the concept map entirely.  When two objects define the same label
("graph" in Fig. 1 is defined by both the graph-theory and the
set-theory entry), removing one owner leaves the label alive — so the
old code skipped invalidation and cached renderings kept pointing at
the deleted object.  The fix invalidates every label the removed object
defined, captured *before* removal.
"""

from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.ontology.msc import build_small_msc


def shared_label_linker() -> NNexus:
    """Two owners of "graph" plus a reader entry that links to one of them."""
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(
        [
            CorpusObject(5, "graph", defines=["graph"], classes=["05C99"],
                         text="Vertices and edges."),
            CorpusObject(6, "graph (set theory)", defines=["graph"],
                         classes=["03E20"], text="Set of ordered pairs."),
            # Steering sends this entry's "graph" mention to object 5
            # (graph theory), not the set-theory homonym.
            CorpusObject(9, "connected components", defines=["connected component"],
                         classes=["05C40"], text="Components of the graph."),
        ]
    )
    return linker


class TestSharedLabelInvalidation:
    def test_removing_one_owner_dirties_cached_readers(self) -> None:
        linker = shared_label_linker()
        rendered = linker.render_object(9)
        assert "#object-5" in rendered  # steering picked the 05C99 entry
        assert linker.cache.is_valid(9)

        # "graph" is still defined (object 6 remains), but the cached
        # rendering of entry 9 now points at a deleted object.
        linker.remove_object(5)
        assert not linker.cache.is_valid(9), (
            "rendering that linked to the removed object must be dirty even "
            "though another object still defines the same label"
        )

    def test_relink_retargets_to_surviving_owner(self) -> None:
        linker = shared_label_linker()
        linker.render_object(9)
        linker.remove_object(5)

        refreshed = linker.relink_invalidated()
        assert 9 in refreshed
        assert "#object-5" not in refreshed[9]
        assert "#object-6" in refreshed[9]  # homonym survivor takes over
        assert linker.cache.is_valid(9)

    def test_render_after_removal_never_serves_stale_target(self) -> None:
        linker = shared_label_linker()
        linker.render_object(9)
        linker.remove_object(5)
        # Even without an explicit relink pass, a read must re-render.
        assert "#object-5" not in linker.render_object(9)

    def test_update_object_inherits_the_fix(self) -> None:
        linker = shared_label_linker()
        linker.render_object(9)
        # Rename object 5's definition: "graph" survives via object 6, but
        # entry 9's cached link to object 5 is now wrong (steering would
        # pick differently against the updated concept map).
        linker.update_object(
            CorpusObject(5, "multigraph", defines=["multigraph"],
                         classes=["05C99"], text="Vertices and edges, repeated.")
        )
        assert not linker.cache.is_valid(9)
        assert "#object-6" in linker.render_object(9)

    def test_sole_owner_removal_still_invalidates(self) -> None:
        # The pre-existing behaviour (vanished-label invalidation) must
        # keep working alongside the shared-label fix.
        linker = NNexus(scheme=build_small_msc())
        linker.add_objects(
            [
                CorpusObject(2, "planar graph", defines=["planar graph"],
                             classes=["05C10"], text="Embeds in the plane."),
                CorpusObject(9, "drawing", defines=["drawing"],
                             classes=["05C40"], text="Draw the planar graph."),
            ]
        )
        rendered = linker.render_object(9)
        assert "#object-2" in rendered
        linker.remove_object(2)
        assert not linker.cache.is_valid(9)
        assert "#object-2" not in linker.render_object(9)
