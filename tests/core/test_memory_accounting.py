"""Linker-level memory accounting: components, reconcile bound, stats."""

import pickle

from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.obs.memory import within_ratio
from repro.obs.metrics import MetricsRegistry
from repro.ontology.msc import build_small_msc

COMPONENTS = {
    "objects",
    "map_segments",
    "invalidation",
    "render_cache",
    "trace_ring",
    "metrics",
}


def _linker(metrics: bool = False) -> NNexus:
    linker = NNexus(
        scheme=build_small_msc(),
        metrics=MetricsRegistry() if metrics else None,
    )
    linker.add_objects(sample_corpus())
    for object_id in linker.object_ids():
        linker.render_object(object_id)
    return linker


def test_every_component_is_registered() -> None:
    linker = _linker()
    assert set(linker.accountant.sample()) == COMPONENTS


def test_estimates_track_mutations() -> None:
    linker = _linker()
    before = linker.accountant.sample()
    assert before["objects"] > 0
    assert before["map_segments"] > 0
    assert before["invalidation"] > 0
    assert before["render_cache"] > 0
    first_id = linker.object_ids()[0]
    linker.remove_object(first_id)
    after = linker.accountant.sample()
    assert after["objects"] < before["objects"]
    # Peaks remember the high-watermark across the removal.
    assert linker.accountant.peaks()["objects"] == before["objects"]


def test_reconcile_stays_within_2x_on_populated_corpus() -> None:
    linker = _linker()
    report = linker.accountant.reconcile()
    # Every deep-rooted component is reconciled; metrics is estimate-only.
    assert set(report) == COMPONENTS - {"metrics"}
    assert within_ratio(report, bound=2.0), report


def test_resource_stats_shape_and_deep_toggle() -> None:
    linker = _linker(metrics=True)
    shallow = linker.resource_stats()
    assert shallow["objects"] == len(linker)
    assert shallow["uptime_seconds"] >= 0.0
    assert set(shallow["memory"]["components"]) == COMPONENTS
    assert shallow["memory"]["reconcile"] == {}
    deep = linker.resource_stats(deep=True)
    assert deep["memory"]["reconcile"], "deep=True must force a reconcile"
    assert deep["memory"]["reconcile_age_sec"] is not None


def test_memory_gauges_fold_into_metrics_snapshot() -> None:
    linker = _linker(metrics=True)
    snapshot = linker.metrics_snapshot()
    gauge_names = {gauge["name"] for gauge in snapshot["gauges"]}
    assert "nnexus_memory_bytes" in gauge_names
    assert "nnexus_memory_peak_bytes" in gauge_names
    assert "nnexus_build_info" in gauge_names
    assert "nnexus_uptime_seconds" in gauge_names
    components = {
        gauge["labels"]["component"]
        for gauge in snapshot["gauges"]
        if gauge["name"] == "nnexus_memory_bytes"
    }
    assert components == COMPONENTS


def test_describe_carries_version_and_uptime() -> None:
    from repro import __version__

    linker = _linker()
    description = linker.describe()
    assert description["version"] == __version__
    assert description["uptime_seconds"] >= 0.0


def test_pickled_linker_rebuilds_its_accountant() -> None:
    linker = _linker()
    clone = pickle.loads(pickle.dumps(linker))
    sample = clone.accountant.sample()
    assert set(sample) == COMPONENTS
    # The clone's estimators are bound to the clone, not the parent.
    parent_objects = linker.accountant.sample()["objects"]
    clone.remove_object(clone.object_ids()[0])
    assert clone.accountant.sample()["objects"] < parent_objects
    assert linker.accountant.sample()["objects"] == parent_objects
