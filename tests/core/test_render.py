"""Tests for link substitution/rendering."""

import pytest

from repro.core.models import Link, LinkedDocument
from repro.core.render import (
    link_table,
    render_annotations,
    render_html,
    render_markdown,
    validate_spans,
)


def make_document() -> LinkedDocument:
    text = "a planar graph has connected components"
    return LinkedDocument(
        source_text=text,
        links=[
            Link("planar graph", 2, "pm", 2, 14, url="https://x/2"),
            Link("connected components", 4, "pm", 19, 39, url="https://x/4"),
        ],
    )


class TestHtml:
    def test_anchors_substituted(self) -> None:
        html = render_html(make_document())
        assert '<a class="nnexus-link" href="https://x/2">planar graph</a>' in html
        assert html.startswith("a ")
        assert html.count("<a ") == 2

    def test_offsets_preserved_for_unlinked_text(self) -> None:
        html = render_html(make_document())
        assert " has " in html

    def test_html_escaping(self) -> None:
        doc = LinkedDocument(
            source_text="x <b>graph</b>",
            links=[Link("graph", 5, "pm", 5, 10, url='u"&<>')],
        )
        html = render_html(doc)
        assert "&quot;" in html  # escaped quote in href
        assert ">graph</a>" in html

    def test_missing_url_falls_back_to_fragment(self) -> None:
        doc = LinkedDocument(
            source_text="a graph", links=[Link("graph", 5, "pm", 2, 7)]
        )
        assert 'href="#object-5"' in render_html(doc)

    def test_custom_css_class(self) -> None:
        assert 'class="mylink"' in render_html(make_document(), css_class="mylink")


class TestOtherFormats:
    def test_markdown(self) -> None:
        md = render_markdown(make_document())
        assert "[planar graph](https://x/2)" in md

    def test_annotations(self) -> None:
        annotated = render_annotations(make_document())
        assert "planar graph[->2]" in annotated
        assert "connected components[->4]" in annotated

    def test_link_table_in_text_order(self) -> None:
        table = link_table(make_document())
        assert table == [
            ("planar graph", 2, "https://x/2"),
            ("connected components", 4, "https://x/4"),
        ]

    def test_no_links_identity(self) -> None:
        doc = LinkedDocument(source_text="plain text")
        assert render_html(doc) == "plain text"
        assert render_markdown(doc) == "plain text"


class TestValidateSpans:
    def test_valid_document_passes(self) -> None:
        validate_spans(make_document())

    def test_out_of_range_span(self) -> None:
        doc = LinkedDocument(source_text="ab", links=[Link("x", 1, "d", 0, 5)])
        with pytest.raises(ValueError):
            validate_spans(doc)

    def test_overlapping_spans(self) -> None:
        doc = LinkedDocument(
            source_text="abcdefgh",
            links=[Link("x", 1, "d", 0, 4), Link("y", 2, "d", 2, 6)],
        )
        with pytest.raises(ValueError):
            validate_spans(doc)

    def test_empty_span_rejected(self) -> None:
        doc = LinkedDocument(source_text="abc", links=[Link("x", 1, "d", 1, 1)])
        with pytest.raises(ValueError):
            validate_spans(doc)
