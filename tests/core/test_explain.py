"""Tests for the linker's explain mode."""

import pytest

from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


@pytest.fixture(scope="module")
def linker() -> NNexus:
    instance = NNexus(scheme=build_small_msc())
    instance.add_objects(sample_corpus())
    return instance


class TestExplain:
    def test_explanations_match_links(self, linker) -> None:
        text = "every planar graph has connected components"
        document = linker.link_text(text, source_classes=["05C10"])
        explanations = linker.explain_text(text, source_classes=["05C10"])
        assert [e.chosen for e in explanations] == [l.target_id for l in document.links]

    def test_homonym_explanation_shows_distances(self, linker) -> None:
        explanations = linker.explain_text("the graph", source_classes=["05C40"])
        explanation = explanations[0]
        assert set(explanation.candidates) == {5, 6}
        assert explanation.chosen == 5
        assert explanation.distances[5] < explanation.distances[6]
        assert explanation.reason == "closest classification"

    def test_policy_rejection_traced(self, linker) -> None:
        explanations = linker.explain_text("even so", source_classes=["05C99"])
        explanation = next(e for e in explanations if e.surface == "even")
        assert explanation.chosen is None
        assert 7 in explanation.policy_rejected
        assert "policy" in explanation.reason

    def test_single_candidate_reason(self, linker) -> None:
        explanations = linker.explain_text("a tree", source_classes=["05C05"])
        assert explanations[0].reason == "single candidate"

    def test_tie_break_reason(self) -> None:
        linker = NNexus(scheme=build_small_msc())
        linker.add_object(CorpusObject(10, "tree", defines=["tree"],
                                       classes=["05C05"], text=""))
        linker.add_object(CorpusObject(20, "tree", defines=["tree"],
                                       classes=["05C05"], text=""))
        explanation = linker.explain_text("a tree", source_classes=["05C05"])[0]
        assert explanation.chosen == 10
        assert "tie broken" in explanation.reason

    def test_format_readable(self, linker) -> None:
        explanation = linker.explain_text("the graph", source_classes=["05C40"])[0]
        formatted = explanation.format()
        assert "match 'graph'" in formatted
        assert "class distances" in formatted
        assert "chosen: 5" in formatted
