"""Tests for classification steering (Section 2.3, Fig. 4, Algorithm 1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.classification import (
    INFINITE_DISTANCE,
    UNKNOWN_CLASS_ID,
    ClassificationGraph,
    ClassificationSteering,
    brute_force_all_pairs,
    default_steering,
)
from repro.core.errors import UnknownClassError
from repro.ontology.msc import build_small_msc
from repro.ontology.scheme import ClassificationScheme


def small_scheme() -> ClassificationScheme:
    scheme = ClassificationScheme("t")
    scheme.add_class("05", "Combinatorics")
    scheme.add_class("03", "Logic")
    scheme.add_class("05C", "Graph theory", parent="05")
    scheme.add_class("05B", "Designs", parent="05")
    scheme.add_class("03E", "Set theory", parent="03")
    scheme.add_class("05C10", "Topological", parent="05C")
    scheme.add_class("05C40", "Connectivity", parent="05C")
    scheme.add_class("05C99", "Misc", parent="05C")
    scheme.add_class("03E20", "Other set theory", parent="03E")
    return scheme


class TestWeights:
    def test_weight_formula(self) -> None:
        scheme = small_scheme()  # height 3
        graph = ClassificationGraph.from_scheme(scheme, base_weight=10)
        # Edge root->05 has i=0 -> weight 10^(3-0-1) = 100.
        assert graph.neighbors("__root__")["05"] == pytest.approx(100.0)
        # Edge 05->05C has i=1 -> 10.
        assert graph.neighbors("05")["05C"] == pytest.approx(10.0)
        # Edge 05C->05C40 has i=2 -> 1.
        assert graph.neighbors("05C")["05C40"] == pytest.approx(1.0)

    def test_base_one_is_hop_count(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme(), base_weight=1)
        assert graph.distance("05C10", "05C40") == pytest.approx(2.0)
        assert graph.distance("05C10", "03E20") == pytest.approx(6.0)

    def test_invalid_base_rejected(self) -> None:
        with pytest.raises(ValueError):
            ClassificationGraph.from_scheme(small_scheme(), base_weight=0)

    def test_negative_edge_rejected(self) -> None:
        graph = ClassificationGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "b", -1.0)


class TestDistances:
    def test_siblings_closer_than_cross_subtree(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme(), base_weight=10)
        same_subtree = graph.distance("05C10", "05C40")
        cross_area = graph.distance("05C10", "03E20")
        assert same_subtree < cross_area

    def test_deep_siblings_closer_than_shallow_siblings(self) -> None:
        # The motivating observation: 05C10/05C40 (deep) are closer than
        # 05C/05B (one level up).
        graph = ClassificationGraph.from_scheme(small_scheme(), base_weight=10)
        assert graph.distance("05C10", "05C40") < graph.distance("05C", "05B")

    def test_self_distance_zero(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        assert graph.distance("05C40", "05C40") == 0.0

    def test_unknown_code_infinite(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        assert graph.distance("05C40", "99Z99") == INFINITE_DISTANCE
        assert graph.distance("zz", "zz") == INFINITE_DISTANCE

    def test_distance_symmetric(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme(), base_weight=10)
        for a, b in [("05C10", "03E20"), ("05", "05C99"), ("03", "05B")]:
            assert graph.distance(a, b) == pytest.approx(graph.distance(b, a))


class TestJohnson:
    def test_johnson_matches_brute_force_on_msc(self) -> None:
        scheme = small_scheme()
        graph = ClassificationGraph.from_scheme(scheme, base_weight=10)
        johnson = graph.johnson_all_pairs()
        reference = brute_force_all_pairs(graph)
        for a in graph.nodes():
            for b in graph.nodes():
                expected = reference[a][b]
                actual = johnson[a].get(b, INFINITE_DISTANCE)
                if math.isinf(expected):
                    assert math.isinf(actual)
                else:
                    assert actual == pytest.approx(expected)

    def test_bellman_ford_matches_dijkstra(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme(), base_weight=10)
        assert graph.bellman_ford("05") == pytest.approx(graph.dijkstra("05"))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 9),
                st.integers(0, 9),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_johnson_matches_brute_force_on_random_graphs(
        self, edges: list[tuple[int, int, float]]
    ) -> None:
        graph = ClassificationGraph()
        for a, b, weight in edges:
            if a != b:
                graph.add_edge(str(a), str(b), weight)
        if not len(graph):
            return
        johnson = graph.johnson_all_pairs()
        reference = brute_force_all_pairs(graph)
        for a in graph.nodes():
            for b in graph.nodes():
                expected = reference[a][b]
                actual = johnson[a].get(b, INFINITE_DISTANCE)
                if math.isinf(expected):
                    assert math.isinf(actual)
                else:
                    assert actual == pytest.approx(expected)


class TestSteering:
    def test_fig4_scenario(self) -> None:
        """The paper's worked example: source 05C40 steers 'graph' to 05C99."""
        steering = default_steering(build_small_msc())
        result = steering.steer(
            ["05C40"], {5: ["05C99"], 6: ["03E20"]}
        )
        assert result.winners == (5,)
        assert result.distances[5] < result.distances[6]

    def test_multiple_source_classes_use_minimum(self) -> None:
        steering = default_steering(small_scheme())
        result = steering.steer(["03E20", "05C10"], {1: ["05C40"], 2: ["03E"]})
        # 05C10 is very close to 05C40; 03E20 close to 03E.
        assert set(result.distances) == {1, 2}
        assert result.winners  # someone wins deterministically

    def test_unclassified_candidate_loses_to_classified(self) -> None:
        steering = default_steering(small_scheme())
        result = steering.steer(["05C40"], {1: ["05C10"], 2: []})
        assert result.winners == (1,)
        assert result.distances[2] == INFINITE_DISTANCE

    def test_unclassified_source_all_tie(self) -> None:
        steering = default_steering(small_scheme())
        result = steering.steer([], {1: ["05C10"], 2: ["03E20"]})
        assert result.winners == (1, 2)

    def test_empty_candidates(self) -> None:
        steering = default_steering(small_scheme())
        result = steering.steer(["05C40"], {})
        assert result.winners == ()
        assert result.best_distance == INFINITE_DISTANCE

    def test_ties_preserved_and_sorted(self) -> None:
        steering = default_steering(small_scheme())
        result = steering.steer(["05C40"], {9: ["05C10"], 4: ["05C10"]})
        assert result.winners == (4, 9)

    def test_exact_class_match_wins(self) -> None:
        steering = default_steering(small_scheme())
        result = steering.steer(["05C40"], {1: ["05C40"], 2: ["05C10"]})
        assert result.winners == (1,)
        assert result.best_distance == 0.0

    def test_precomputed_distances_give_same_answer(self) -> None:
        lazy = default_steering(build_small_msc(), precompute=False)
        eager = default_steering(build_small_msc(), precompute=True)
        candidates = {5: ["05C99"], 6: ["03E20"]}
        assert lazy.steer(["05C40"], candidates).winners == eager.steer(
            ["05C40"], candidates
        ).winners


class TestSteeringObject:
    def test_pair_distance_empty_inputs(self) -> None:
        steering = ClassificationSteering(
            ClassificationGraph.from_scheme(small_scheme())
        )
        assert steering.pair_distance([], ["05"]) == INFINITE_DISTANCE
        assert steering.pair_distance(["05"], []) == INFINITE_DISTANCE


class TestInterning:
    def test_class_id_round_trips(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        for code in graph.nodes():
            assert graph.code_of(graph.class_id(code)) == code

    def test_unknown_code_gets_sentinel_id(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        assert graph.class_id("99Z99") == UNKNOWN_CLASS_ID
        with pytest.raises(UnknownClassError):
            graph.code_of(UNKNOWN_CLASS_ID)

    def test_distance_between_ids_matches_string_api(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme(), base_weight=10)
        for a in graph.nodes():
            for b in graph.nodes():
                assert graph.distance_between_ids(
                    graph.class_id(a), graph.class_id(b)
                ) == pytest.approx(graph.distance(a, b))

    def test_distance_between_ids_on_cyclic_graph(self) -> None:
        # A bridge edge (cross-scheme mapping) breaks the forest fast
        # path; distances must fall back to Dijkstra rows and shorten.
        graph = ClassificationGraph.from_scheme(small_scheme(), base_weight=10)
        before = graph.distance("05C10", "03E20")
        graph.add_edge("05C", "03E", 1.0)
        after = graph.distance("05C10", "03E20")
        assert after < before
        assert after == pytest.approx(3.0)  # 05C10 -> 05C -> 03E -> 03E20
        reference = brute_force_all_pairs(graph)
        for a in graph.nodes():
            for b in graph.nodes():
                assert graph.distance(a, b) == pytest.approx(reference[a][b])

    def test_version_bumps_on_mutation(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        version = graph.version
        graph.add_node("42A")
        assert graph.version > version
        version = graph.version
        graph.add_edge("42A", "05", 7.0)
        assert graph.version > version

    def test_warm_rows_ignores_unknown_ids(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        graph.add_edge("05C", "03E", 1.0)  # cycle -> row-based path
        graph.warm_rows([UNKNOWN_CLASS_ID, graph.class_id("05C40"), 10_000])
        assert graph.distance("05C40", "03E20") == pytest.approx(3.0)


class TestNeighborsView:
    def test_view_is_read_only(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        view = graph.neighbors("05C")
        with pytest.raises(TypeError):
            view["05C10"] = 0.0  # type: ignore[index]
        with pytest.raises(TypeError):
            del view["05C10"]  # type: ignore[attr-defined]

    def test_view_is_live(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        view = graph.neighbors("05C")
        assert "42A" not in view
        graph.add_edge("05C", "42A", 5.0)
        assert view["42A"] == pytest.approx(5.0)

    def test_unknown_code_gives_empty_view(self) -> None:
        graph = ClassificationGraph.from_scheme(small_scheme())
        view = graph.neighbors("99Z99")
        assert len(view) == 0
        with pytest.raises(TypeError):
            view["x"] = 1.0  # type: ignore[index]
