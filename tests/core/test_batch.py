"""Tests for offline batch linking."""

import pytest

from repro.core.batch import BatchLinker
from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


@pytest.fixture()
def linker() -> NNexus:
    instance = NNexus(scheme=build_small_msc())
    instance.add_objects(sample_corpus())
    return instance


class TestRun:
    def test_links_whole_corpus(self, linker) -> None:
        report = BatchLinker(linker, fmt="html").run()
        assert report.entries == 30
        assert report.links > 50
        assert set(report.rendered) == set(linker.object_ids())
        assert report.links_per_entry > 1.0
        assert report.seconds > 0

    def test_selection(self, linker) -> None:
        report = BatchLinker(linker, fmt=None).run(object_ids=[1, 5, 11])
        assert report.entries == 3
        assert report.rendered == {}
        assert set(report.link_counts) == {1, 5, 11}

    def test_progress_callback(self, linker) -> None:
        seen: list[tuple[int, int]] = []
        BatchLinker(linker, fmt=None).run(
            object_ids=[1, 2, 3], progress=lambda done, total: seen.append((done, total))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_output_files(self, linker, tmp_path) -> None:
        out = tmp_path / "rendered"
        report = BatchLinker(linker, fmt="markdown").run(
            object_ids=[1, 2], output_dir=out
        )
        assert report.files_written == 2
        assert (out / "object-1.md").exists()
        assert "](" in (out / "object-1.md").read_text()

    def test_multithreaded_matches_single(self, linker) -> None:
        single = BatchLinker(linker, fmt="annotations", workers=1).run()
        multi = BatchLinker(linker, fmt="annotations", workers=4).run()
        assert single.rendered == multi.rendered
        assert single.links == multi.links

    def test_invalid_parameters(self, linker) -> None:
        with pytest.raises(ValueError):
            BatchLinker(linker, fmt="docx")
        with pytest.raises(ValueError):
            BatchLinker(linker, workers=0)

    def test_summary_keys(self, linker) -> None:
        summary = BatchLinker(linker, fmt=None).run(object_ids=[1]).summary()
        assert {"entries", "links", "seconds", "links_per_entry"} <= set(summary)
