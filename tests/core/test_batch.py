"""Tests for offline batch linking."""

import pytest

from repro.core.batch import BatchLinker
from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


@pytest.fixture()
def linker() -> NNexus:
    instance = NNexus(scheme=build_small_msc())
    instance.add_objects(sample_corpus())
    return instance


class TestRun:
    def test_links_whole_corpus(self, linker) -> None:
        report = BatchLinker(linker, fmt="html").run()
        assert report.entries == 30
        assert report.links > 50
        assert set(report.rendered) == set(linker.object_ids())
        assert report.links_per_entry > 1.0
        assert report.seconds > 0

    def test_selection(self, linker) -> None:
        report = BatchLinker(linker, fmt=None).run(object_ids=[1, 5, 11])
        assert report.entries == 3
        assert report.rendered == {}
        assert set(report.link_counts) == {1, 5, 11}

    def test_progress_callback(self, linker) -> None:
        seen: list[tuple[int, int]] = []
        BatchLinker(linker, fmt=None).run(
            object_ids=[1, 2, 3], progress=lambda done, total: seen.append((done, total))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_output_files(self, linker, tmp_path) -> None:
        out = tmp_path / "rendered"
        report = BatchLinker(linker, fmt="markdown").run(
            object_ids=[1, 2], output_dir=out
        )
        assert report.files_written == 2
        assert (out / "object-1.md").exists()
        assert "](" in (out / "object-1.md").read_text()

    def test_multithreaded_matches_single(self, linker) -> None:
        single = BatchLinker(linker, fmt="annotations", workers=1).run()
        multi = BatchLinker(linker, fmt="annotations", workers=4).run()
        assert single.rendered == multi.rendered
        assert single.links == multi.links

    def test_invalid_parameters(self, linker) -> None:
        with pytest.raises(ValueError):
            BatchLinker(linker, fmt="docx")
        with pytest.raises(ValueError):
            BatchLinker(linker, workers=0)
        with pytest.raises(ValueError):
            BatchLinker(linker, mode="fork")
        with pytest.raises(ValueError):
            BatchLinker(linker, chunk_size=0)

    def test_summary_keys(self, linker) -> None:
        summary = BatchLinker(linker, fmt=None).run(object_ids=[1]).summary()
        assert {"entries", "links", "seconds", "links_per_entry"} <= set(summary)
        assert {"files_written", "workers"} <= set(summary)


class TestProcessMode:
    def test_matches_thread_mode_byte_for_byte(self, linker) -> None:
        threaded = BatchLinker(linker, fmt="html", mode="thread").run()
        processed = BatchLinker(
            linker, fmt="html", mode="process", workers=2, chunk_size=7
        ).run()
        assert processed.rendered == threaded.rendered
        assert processed.links == threaded.links
        assert processed.mode == "process"
        assert processed.workers == 2

    def test_reports_worker_seconds(self, linker) -> None:
        report = BatchLinker(linker, fmt=None, mode="process", workers=2).run()
        assert report.worker_seconds
        assert all(seconds >= 0.0 for seconds in report.worker_seconds.values())

    def test_writes_output_files(self, linker, tmp_path) -> None:
        out = tmp_path / "rendered"
        report = BatchLinker(linker, fmt="markdown", mode="process").run(
            object_ids=[1, 2], output_dir=out
        )
        assert report.files_written == 2
        assert (out / "object-2.md").exists()

    def test_empty_selection(self, linker) -> None:
        report = BatchLinker(linker, fmt=None, mode="process").run(object_ids=[])
        assert report.entries == 0
        assert report.links == 0


class TestRetainRenderings:
    def test_disabled_keeps_files_as_source_of_truth(self, linker, tmp_path) -> None:
        out = tmp_path / "rendered"
        report = BatchLinker(linker, fmt="html", retain_renderings=False).run(
            output_dir=out
        )
        assert report.rendered == {}
        assert report.files_written == 30
        assert report.links > 50
        assert len(list(out.glob("object-*.html"))) == 30

    def test_disabled_without_output_dir_still_counts_links(self, linker) -> None:
        report = BatchLinker(linker, fmt="html", retain_renderings=False).run()
        assert report.rendered == {}
        assert report.files_written == 0
        assert set(report.link_counts) == set(linker.object_ids())
