"""Linker round trips through durable storage backends.

The acceptance bar: a cold-started linker must reproduce the golden
renderings byte-identically (the same digest as
``tests/core/test_golden_render.py``), the invalidation dirty-set must
survive restarts, and storage failures must degrade the linker to
read-only instead of crashing or silently diverging.
"""

import pickle
import shutil

import pytest

from repro.core.errors import ReadOnlyError
from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.persistence import open_storage
from repro.storage.faults import StorageFaultInjector
from tests.core.test_golden_render import _FORMATS, GOLDEN_SHA256, corpus_digest

DURABLE_BACKENDS = ("engine", "sqlite")


def build_durable_linker(backend, data_dir, **kwargs) -> NNexus:
    storage = open_storage(backend, data_dir, **kwargs)
    return NNexus(scheme=build_small_msc(), storage=storage)


def render_all(linker) -> dict:
    return {
        object_id: {fmt: linker.render_object(object_id, fmt=fmt) for fmt in _FORMATS}
        for object_id in linker.object_ids()
    }


class TestGoldenRoundTrip:
    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_restart_reproduces_golden_renderings(self, tmp_path, backend) -> None:
        linker = build_durable_linker(backend, tmp_path / "data")
        linker.add_objects(sample_corpus())
        assert corpus_digest(render_all(linker)) == GOLDEN_SHA256
        linker.storage.close()

        restarted = build_durable_linker(backend, tmp_path / "data")
        assert len(restarted) == 30
        assert restarted.last_restore["mismatches"] == 0
        assert corpus_digest(render_all(restarted)) == GOLDEN_SHA256
        restarted.storage.close()

    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_restart_without_persisted_renderings(self, tmp_path, backend) -> None:
        linker = build_durable_linker(
            backend, tmp_path / "data", persist_renderings=False
        )
        linker.add_objects(sample_corpus())
        render_all(linker)
        linker.storage.close()

        restarted = build_durable_linker(
            backend, tmp_path / "data", persist_renderings=False
        )
        assert restarted.last_restore["renderings"] == 0
        assert len(restarted.cache) == 0
        assert corpus_digest(render_all(restarted)) == GOLDEN_SHA256
        restarted.storage.close()

    def test_checkpointed_engine_restarts_from_snapshot(self, tmp_path) -> None:
        linker = build_durable_linker("engine", tmp_path / "data")
        linker.add_objects(sample_corpus())
        render_all(linker)
        linker.checkpoint_storage()
        linker.storage.close()
        assert (tmp_path / "data" / "snapshot.json").exists()
        assert (tmp_path / "data" / "wal.jsonl").read_bytes() == b""

        restarted = build_durable_linker("engine", tmp_path / "data")
        assert restarted.last_restore["recovery"]["snapshot_loaded"]
        assert corpus_digest(render_all(restarted)) == GOLDEN_SHA256
        restarted.storage.close()


class TestDirtySetSurvival:
    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_invalidation_dirty_set_survives_restart(self, tmp_path, backend) -> None:
        linker = build_durable_linker(backend, tmp_path / "data")
        linker.add_objects(sample_corpus())
        render_all(linker)
        # A new definition invalidates entries that may invoke it.
        linker.add_object(
            CorpusObject(
                900,
                "planar graph embedding",
                defines=["planar graph"],
                classes=["05C10"],
                text="An embedding of a planar graph into the plane.",
            )
        )
        dirty_before = linker.cache.invalid_keys()
        assert dirty_before, "the new homonym should have dirtied some entries"
        linker.storage.close()

        restarted = build_durable_linker(backend, tmp_path / "data")
        assert restarted.cache.invalid_keys() == dirty_before
        refreshed = restarted.relink_invalidated()
        assert set(refreshed) == {key[0] for key in dirty_before}
        assert restarted.cache.invalid_keys() == []
        restarted.storage.close()


class TestMutationJournaling:
    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_update_remove_policy_survive_restart(self, tmp_path, backend) -> None:
        linker = build_durable_linker(backend, tmp_path / "data")
        linker.add_objects(sample_corpus())
        original = linker.get_object(2)
        linker.update_object(
            CorpusObject(
                2,
                original.title,
                defines=list(original.defines),
                classes=list(original.classes),
                text=original.text + " Updated for the restart test.",
            )
        )
        linker.remove_object(30)
        linker.set_linking_policy(4, "forbid *\n")
        expected = render_all(linker)
        linker.storage.close()

        restarted = build_durable_linker(backend, tmp_path / "data")
        assert restarted.object_ids() == linker.object_ids()
        assert restarted.get_object(2).text.endswith("Updated for the restart test.")
        assert not restarted.has_object(30)
        assert restarted.get_object(4).linking_policy == "forbid *\n"
        assert len(restarted.policy_table) == len(linker.policy_table)
        assert render_all(restarted) == expected
        restarted.storage.close()

    def test_update_journals_one_transaction(self, tmp_path) -> None:
        """A crash between update's remove and add halves must never
        persist a corpus with the entry missing."""
        faults = StorageFaultInjector()
        storage = open_storage("engine", tmp_path / "data", faults=faults)
        linker = NNexus(scheme=build_small_msc(), storage=storage)
        linker.add_objects(sample_corpus())
        before_text = linker.get_object(2).text
        faults.short_write(on_call=1, keep_bytes=30)  # tear the update frame
        linker.update_object(CorpusObject(2, "planar graph", text="replaced"))
        # The torn journal write degraded the linker, not the caller.
        assert linker.read_only
        storage.close()

        restarted = build_durable_linker("engine", tmp_path / "data")
        assert restarted.has_object(2), "update tore into a remove-without-add"
        assert restarted.get_object(2).text == before_text
        restarted.storage.close()


class TestReadOnlyDegradation:
    def test_journal_failure_degrades_to_read_only(self, tmp_path) -> None:
        faults = StorageFaultInjector()
        storage = open_storage("engine", tmp_path / "data", faults=faults)
        linker = NNexus(scheme=build_small_msc(), storage=storage)
        linker.add_objects(sample_corpus())
        assert not linker.read_only

        faults.fail_fsync(1)
        linker.add_object(CorpusObject(901, "chromatic number", classes=["05C15"]))
        assert linker.read_only
        assert "FaultInjectedError" in linker.storage_error
        assert linker.describe()["read_only"] is True

        # Reads keep serving; writes are refused with the typed error.
        assert linker.render_object(1, fmt="html")
        with pytest.raises(ReadOnlyError):
            linker.add_object(CorpusObject(902, "girth"))
        with pytest.raises(ReadOnlyError):
            linker.remove_object(1)
        with pytest.raises(ReadOnlyError):
            linker.set_linking_policy(1, "forbid *\n")
        storage.close()

    def test_read_only_flag_exported_in_metrics(self, tmp_path) -> None:
        storage = open_storage("engine", tmp_path / "data")
        linker = NNexus(scheme=build_small_msc(), storage=storage)
        gauges = {g["name"]: g["value"] for g in linker.metrics_snapshot()["gauges"]}
        assert gauges["nnexus_storage_read_only"] == 0
        assert "nnexus_cold_start_seconds" in gauges
        storage.close()


class TestRestoreVerification:
    def test_tampered_rendering_is_evicted_on_cold_start(self, tmp_path) -> None:
        linker = build_durable_linker("engine", tmp_path / "data")
        linker.add_objects(sample_corpus())
        render_all(linker)
        # Tamper with a persisted rendering body behind the linker's back.
        db = linker.storage.database
        key = f"{linker.object_ids()[0]}:html"
        db.update("renderings", key, {"body": "<p>stale bytes</p>"})
        linker.storage.close()

        restarted = build_durable_linker("engine", tmp_path / "data")
        assert restarted.last_restore["mismatches"] >= 1
        # The evicted entry re-renders to the correct bytes on demand.
        assert corpus_digest(render_all(restarted)) == GOLDEN_SHA256
        restarted.storage.close()


class TestKillPointsThroughTheLinker:
    def test_sampled_wal_truncations_recover_renderable_prefixes(self, tmp_path) -> None:
        """Chop the WAL of a linked corpus at sampled offsets; every cut
        must cold-start cleanly and render byte-identically to a fresh
        memory-only linker over the same recovered object set."""
        origin = tmp_path / "origin"
        storage = open_storage("engine", origin, persist_renderings=False)
        linker = NNexus(scheme=build_small_msc(), storage=storage)
        corpus = sample_corpus()
        linker.add_objects(corpus)
        storage.close()
        wal = (origin / "wal.jsonl").read_bytes()

        cuts = list(range(0, len(wal) + 1, max(1, len(wal) // 24)))
        if len(wal) not in cuts:
            cuts.append(len(wal))
        seen_sizes = set()
        for cut in cuts:
            trial = tmp_path / "trial"
            if trial.exists():
                shutil.rmtree(trial)
            shutil.copytree(origin, trial)
            (trial / "wal.jsonl").write_bytes(wal[:cut])
            recovered = build_durable_linker("engine", trial)
            recovered_ids = recovered.object_ids()
            seen_sizes.add(len(recovered_ids))
            # Committed prefix: add_objects journals in id order.
            assert recovered_ids == [obj.object_id for obj in corpus[: len(recovered_ids)]]
            reference = NNexus(scheme=build_small_msc())
            reference.add_objects(corpus[: len(recovered_ids)])
            assert corpus_digest(render_all(recovered)) == corpus_digest(
                render_all(reference)
            )
            recovered.storage.close()
        assert 0 in seen_sizes and len(corpus) in seen_sizes


class TestProcessModeCompatibility:
    def test_pickled_linker_swaps_durable_storage_out(self, tmp_path) -> None:
        linker = build_durable_linker("engine", tmp_path / "data")
        linker.add_objects(sample_corpus()[:5])
        clone = pickle.loads(pickle.dumps(linker))
        assert clone.storage.durable is False
        assert clone.storage.backend_name == "memory"
        assert len(clone) == 5
        linker.storage.close()
