"""Correctness of the lazily paged concept map (PR 7 tentpole).

The acceptance bar: with residency bounded to any cache size — down to
a single segment — every rendering stays byte-identical to the golden
digest, the resident segment count never exceeds the bound, mutations
write through to the owning segment (so eviction + re-fault reproduces
them), and a cold start materializes *zero* labels up front.
"""

import pickle

import pytest

from repro.core.concept_map import (
    LABEL_SEGMENT_COUNT,
    ConceptMap,
    PagedConceptMap,
    label_segment,
)
from repro.core.errors import NNexusError
from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.persistence import open_storage
from tests.core.test_golden_render import _FORMATS, GOLDEN_SHA256, corpus_digest
from tests.core.test_persistence import DURABLE_BACKENDS, render_all

#: Bounded caches exercised by the golden matrix; 0 = paged, unbounded.
CACHE_SIZES = (1, 2, 0)


def build_paged_linker(backend, data_dir, cache_segments, **kwargs) -> NNexus:
    storage = open_storage(backend, data_dir, **kwargs)
    return NNexus(
        scheme=build_small_msc(),
        storage=storage,
        map_cache_segments=cache_segments,
    )


def seed_corpus(backend, data_dir) -> None:
    """Ingest the sample corpus into a durable dir with an unpaged linker."""
    storage = open_storage(backend, data_dir, persist_renderings=False)
    linker = NNexus(scheme=build_small_msc(), storage=storage)
    linker.add_objects(sample_corpus())
    storage.close()


class TestGoldenUnderPaging:
    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    @pytest.mark.parametrize("cache", CACHE_SIZES)
    def test_renderings_byte_identical_at_every_cache_size(
        self, tmp_path, backend, cache
    ) -> None:
        seed_corpus(backend, tmp_path / "data")
        linker = build_paged_linker(
            backend, tmp_path / "data", cache, persist_renderings=False
        )
        assert corpus_digest(render_all(linker)) == GOLDEN_SHA256
        snapshot = linker.concept_map.paging_snapshot()
        if cache:
            assert snapshot["peak_resident"] <= cache
        linker.storage.close()

    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_cold_start_materializes_no_segments(self, tmp_path, backend) -> None:
        seed_corpus(backend, tmp_path / "data")
        linker = build_paged_linker(
            backend, tmp_path / "data", 0, persist_renderings=False
        )
        # The replay restored every object without touching the map.
        snapshot = linker.concept_map.paging_snapshot()
        assert len(linker) == 30
        assert snapshot["faults"] == 0
        assert snapshot["resident"] == 0
        # First probe faults exactly the segments its tokens touch.
        linker.render_object(linker.object_ids()[0])
        after = linker.concept_map.paging_snapshot()
        assert 0 < after["faults"] <= LABEL_SEGMENT_COUNT
        linker.storage.close()

    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_cold_start_on_corpus_larger_than_cache(self, tmp_path, backend) -> None:
        seed_corpus(backend, tmp_path / "data")
        probe = build_paged_linker(
            backend, tmp_path / "data", 0, persist_renderings=False
        )
        render_all(probe)
        used = probe.concept_map.paging_snapshot()["resident"]
        probe.storage.close()
        assert used >= 4  # the sample corpus spans many segments

        cache = max(1, used // 4)
        linker = build_paged_linker(
            backend, tmp_path / "data", cache, persist_renderings=False
        )
        assert corpus_digest(render_all(linker)) == GOLDEN_SHA256
        snapshot = linker.concept_map.paging_snapshot()
        assert snapshot["peak_resident"] <= cache
        assert snapshot["evictions"] > 0  # the LRU actually churned
        linker.storage.close()


class TestMutationWriteThrough:
    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_remove_and_readd_under_eviction(self, tmp_path, backend) -> None:
        seed_corpus(backend, tmp_path / "data")
        linker = build_paged_linker(
            backend, tmp_path / "data", 1, persist_renderings=False
        )
        objects = {obj.object_id: obj for obj in sample_corpus()}
        victim = sorted(objects)[0]
        linker.remove_object(victim)
        assert not linker.concept_map.labels_for_object(victim)
        linker.add_object(objects[victim])
        # cache=1 means every label in a different segment evicted the
        # previous one mid-mutation; the journal heals each re-fault.
        assert corpus_digest(render_all(linker)) == GOLDEN_SHA256
        linker.storage.close()

        # The labels table (not resident memory) is the durable truth.
        restarted = build_paged_linker(
            backend, tmp_path / "data", 1, persist_renderings=False
        )
        assert corpus_digest(render_all(restarted)) == GOLDEN_SHA256
        restarted.storage.close()

    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_update_object_rewrites_labels(self, tmp_path, backend) -> None:
        seed_corpus(backend, tmp_path / "data")
        linker = build_paged_linker(
            backend, tmp_path / "data", 2, persist_renderings=False
        )
        victim = linker.object_ids()[0]
        updated = sample_corpus()[0]
        assert updated.object_id == victim
        updated.defines = list(updated.defines) + ["freshly minted concept"]
        linker.update_object(updated)
        words = ("freshly", "minted", "concept")
        assert words in linker.concept_map.labels_for_object(victim)
        assert victim in linker.concept_map.owners("freshly minted concept")
        linker.storage.close()

        restarted = build_paged_linker(
            backend, tmp_path / "data", 2, persist_renderings=False
        )
        assert words in restarted.concept_map.labels_for_object(victim)
        restarted.storage.close()


class TestMigrationAndGuards:
    @pytest.mark.parametrize("backend", DURABLE_BACKENDS)
    def test_backfill_migrates_label_free_directory(self, tmp_path, backend) -> None:
        # Simulate a pre-labels data dir: wipe the rows the seed wrote.
        seed_corpus(backend, tmp_path / "data")
        storage = open_storage(backend, tmp_path / "data", persist_renderings=False)
        for object_id in {oid for _, oid in storage.iter_labels()}:
            storage.replace_labels(object_id, ())
        assert storage.label_stats()["labels"] == 0
        linker = NNexus(
            scheme=build_small_msc(), storage=storage, map_cache_segments=0
        )
        assert linker.last_restore["label_backfill"] == 30
        assert storage.label_stats()["labels"] > 0
        assert corpus_digest(render_all(linker)) == GOLDEN_SHA256
        storage.close()

    def test_memory_backend_rejected(self) -> None:
        with pytest.raises(NNexusError, match="durable storage backend"):
            NNexus(scheme=build_small_msc(), map_cache_segments=4)

    def test_negative_cache_rejected(self, tmp_path) -> None:
        storage = open_storage("sqlite", tmp_path / "data")
        try:
            with pytest.raises(ValueError, match="max_resident"):
                NNexus(
                    scheme=build_small_msc(), storage=storage, map_cache_segments=-1
                )
        finally:
            storage.close()

    def test_paged_linker_refuses_pickling(self, tmp_path) -> None:
        linker = build_paged_linker(
            "sqlite", tmp_path / "data", 4, persist_renderings=False
        )
        with pytest.raises(NNexusError, match="cannot be pickled"):
            pickle.dumps(linker)
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(linker.concept_map)
        linker.storage.close()

    def test_unpaged_map_still_pickles(self) -> None:
        concept_map = ConceptMap()
        concept_map.add_phrase("abelian group", 1)
        clone = pickle.loads(pickle.dumps(concept_map))
        assert clone.owners("abelian group") == frozenset({1})
        # The rebound probe hook serves lookups after the round trip.
        assert clone.longest_match(("abelian", "group"), 0) is not None


class TestObservability:
    def test_segment_hash_is_stable_and_in_range(self) -> None:
        for word in ("group", "ring", "functor", "zeta", "étale"):
            segment = label_segment(word)
            assert 0 <= segment < LABEL_SEGMENT_COUNT
            assert segment == label_segment(word)

    def test_metrics_snapshot_folds_paging_series(self, tmp_path) -> None:
        seed_corpus("engine", tmp_path / "data")
        linker = build_paged_linker(
            "engine", tmp_path / "data", 2, persist_renderings=False
        )
        render_all(linker)
        snapshot = linker.metrics_snapshot()
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
        paging = linker.concept_map.paging_snapshot()
        assert counters["nnexus_map_segment_faults_total"] == paging["faults"]
        assert counters["nnexus_map_segment_hits_total"] == paging["hits"]
        assert counters["nnexus_map_segment_evictions_total"] == paging["evictions"]
        assert gauges["nnexus_map_resident_segments"] == paging["resident"]
        assert gauges["nnexus_map_peak_resident_segments"] == paging["peak_resident"]
        assert gauges["nnexus_map_cache_segments"] == 2
        assert linker.describe()["map_cache_segments"] == 2
        linker.storage.close()

    def test_storage_backed_introspection(self, tmp_path) -> None:
        seed_corpus("engine", tmp_path / "data")
        unpaged = NNexus(
            scheme=build_small_msc(),
            storage=open_storage(
                "engine", tmp_path / "data", persist_renderings=False
            ),
        )
        paged = build_paged_linker(
            "engine", tmp_path / "data2", 0, persist_renderings=False
        )
        paged.add_objects(sample_corpus())
        assert len(paged.concept_map) == len(unpaged.concept_map)
        assert paged.concept_map.stats() == unpaged.concept_map.stats()
        assert sorted(
            (l.words, l.object_id) for l in paged.concept_map.concept_labels()
        ) == sorted(
            (l.words, l.object_id) for l in unpaged.concept_map.concept_labels()
        )
        unpaged.storage.close()
        paged.storage.close()
