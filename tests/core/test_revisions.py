"""Tests for entry revision history."""

import pytest

from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.core.revisions import RevisionError, RevisionedCorpus, diff_words
from repro.core.errors import UnknownObjectError
from repro.ontology.msc import build_small_msc


@pytest.fixture()
def corpus() -> RevisionedCorpus:
    linker = NNexus(scheme=build_small_msc())
    return RevisionedCorpus(linker)


def graph_entry(text: str = "Vertices and edges.", title: str = "graph") -> CorpusObject:
    return CorpusObject(5, title, defines=["graph"], classes=["05C99"], text=text)


class TestSave:
    def test_first_save_creates_and_links(self, corpus) -> None:
        revision = corpus.save(graph_entry(), author="ada", comment="initial")
        assert revision.number == 1
        assert revision.relinked
        assert corpus.linker.has_object(5)

    def test_text_edit_relinks(self, corpus) -> None:
        corpus.save(graph_entry())
        revision = corpus.save(graph_entry(text="A different body."), author="bob")
        assert revision.relinked
        assert corpus.linker.get_object(5).text == "A different body."

    def test_title_typo_fix_is_free(self, corpus) -> None:
        corpus.save(graph_entry(title="garph"))
        # Same labels/classes/text; only the display title changes...
        # but the title IS a concept phrase, so change defines too to
        # really exercise the free path: keep concept_phrases identical.
        entry = graph_entry(title="garph")
        entry.synonyms = []
        first_phrases = tuple(entry.concept_phrases())
        fixed = CorpusObject(5, "garph", defines=["graph"], classes=["05C99"],
                             text="Vertices and edges.", domain="default")
        assert tuple(fixed.concept_phrases()) == first_phrases
        revision = corpus.save(fixed, author="bob", comment="noop edit")
        assert not revision.relinked
        assert revision.invalidated == ()

    def test_metadata_only_edit_updates_stored_object(self, corpus) -> None:
        corpus.save(graph_entry())
        same = graph_entry()
        revision = corpus.save(same, comment="touch")
        assert not revision.relinked
        assert corpus.latest(5).comment == "touch"

    def test_label_change_relinks(self, corpus) -> None:
        corpus.save(graph_entry())
        changed = CorpusObject(5, "graph", defines=["graph", "simple graph"],
                               classes=["05C99"], text="Vertices and edges.")
        assert corpus.save(changed).relinked

    def test_invalidated_ids_recorded(self, corpus) -> None:
        corpus.save(
            CorpusObject(1, "plane graph", defines=["plane graph"],
                         classes=["05C10"], text="Mentions graphs here.")
        )
        revision = corpus.save(graph_entry())
        assert 1 in revision.invalidated


class TestHistory:
    def test_history_order_and_latest(self, corpus) -> None:
        corpus.save(graph_entry(), author="ada")
        corpus.save(graph_entry(text="v2"), author="bob")
        history = corpus.history(5)
        assert [r.number for r in history] == [1, 2]
        assert corpus.latest(5).snapshot.text == "v2"

    def test_unknown_object_raises(self, corpus) -> None:
        with pytest.raises(UnknownObjectError):
            corpus.history(404)

    def test_unknown_revision_raises(self, corpus) -> None:
        corpus.save(graph_entry())
        with pytest.raises(RevisionError):
            corpus.revision(5, 99)

    def test_authors(self, corpus) -> None:
        corpus.save(graph_entry(), author="ada")
        corpus.save(graph_entry(text="v2"), author="bob")
        corpus.save(graph_entry(text="v3"), author="ada")
        assert corpus.authors(5) == ["ada", "bob"]

    def test_relink_churn(self, corpus) -> None:
        corpus.save(graph_entry())
        corpus.save(graph_entry())  # free
        corpus.save(graph_entry(text="v2"))  # relink
        churn = corpus.relink_churn()
        assert churn == {"relinked": 2, "free": 1}


class TestRestore:
    def test_restore_old_text(self, corpus) -> None:
        corpus.save(graph_entry(text="v1"))
        corpus.save(graph_entry(text="vandalized"))
        revision = corpus.restore(5, 1, author="moderator")
        assert corpus.linker.get_object(5).text == "v1"
        assert revision.comment == "restore revision 1"
        assert len(corpus.history(5)) == 3

    def test_restore_relinks_corpus(self, corpus) -> None:
        corpus.save(
            CorpusObject(1, "plane graph", defines=["plane graph"],
                         classes=["05C10"], text="A planar graph drawn flat.")
        )
        corpus.save(CorpusObject(2, "planar graph", defines=["planar graph"],
                                 classes=["05C10"], text="v1"))
        corpus.save(CorpusObject(2, "renamed concept", defines=["renamed concept"],
                                 classes=["05C10"], text="v1"))
        # After the rename, entry 1 cannot link 'planar graph'.
        doc = corpus.linker.link_object(1)
        assert all(l.source_phrase != "planar graph" for l in doc.links)
        corpus.restore(2, 2)
        doc = corpus.linker.link_object(1)
        assert any(l.source_phrase == "planar graph" for l in doc.links)


class TestDiff:
    def test_word_diff(self) -> None:
        diff = diff_words("a planar graph here", "a planar multigraph here now")
        assert ("-", "graph") in diff
        assert ("+", "multigraph") in diff
        assert ("+", "now") in diff or ("+", "here now") in diff

    def test_revision_diff(self, corpus) -> None:
        corpus.save(graph_entry(text="old words"))
        corpus.save(graph_entry(text="new words"))
        diff = corpus.diff(5, 1, 2)
        assert ("-", "old") in diff
        assert ("+", "new") in diff
