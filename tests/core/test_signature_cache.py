"""Tests for the steering signature-pair cache (the fast-path memo).

The cache must be *transparent*: identical Algorithm 1 decisions with
the cache enabled, disabled, or invalidated mid-stream; and it must
never serve distances computed against an older class graph.
"""

import threading

import pytest

from repro.core.classification import (
    INFINITE_DISTANCE,
    ClassificationGraph,
    ClassificationSteering,
    UNKNOWN_CLASS_ID,
)
from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.ontology.msc import build_small_msc
from repro.ontology.scheme import ClassificationScheme


def small_scheme() -> ClassificationScheme:
    scheme = ClassificationScheme("t")
    scheme.add_class("05", "Combinatorics")
    scheme.add_class("03", "Logic")
    scheme.add_class("05C", "Graph theory", parent="05")
    scheme.add_class("05B", "Designs", parent="05")
    scheme.add_class("03E", "Set theory", parent="03")
    scheme.add_class("05C10", "Topological", parent="05C")
    scheme.add_class("05C40", "Connectivity", parent="05C")
    scheme.add_class("03E20", "Other set theory", parent="03E")
    return scheme


def steering_pair() -> tuple[ClassificationSteering, ClassificationSteering]:
    """One cached and one cache-disabled steering over identical graphs."""
    cached = ClassificationSteering(ClassificationGraph.from_scheme(small_scheme()))
    uncached = ClassificationSteering(
        ClassificationGraph.from_scheme(small_scheme()), signature_cache_size=0
    )
    return cached, uncached


_CLASS_LISTS: list[list[str]] = [
    ["05C40"],
    ["05C10"],
    ["03E20"],
    ["05C10", "03E20"],
    ["05B", "05C40"],
    ["99Z99"],  # unknown to the graph
    [],
    ["05", "03"],
]


class TestTransparency:
    def test_identical_decisions_cache_on_and_off(self) -> None:
        cached, uncached = steering_pair()
        candidates = {index: classes for index, classes in enumerate(_CLASS_LISTS)}
        for source in _CLASS_LISTS:
            # Probe twice so the second cached pass is served from the memo.
            for _ in range(2):
                a = cached.steer(source, candidates)
                b = uncached.steer(source, candidates)
                assert a.winners == b.winners
                assert a.distances == b.distances

    def test_disabled_cache_never_stores(self) -> None:
        _, uncached = steering_pair()
        for _ in range(3):
            uncached.pair_distance(["05C40"], ["03E20"])
        snapshot = uncached.signature_cache_snapshot()
        assert snapshot["entries"] == 0
        assert snapshot["hits"] == 0

    def test_repeat_probe_is_a_hit(self) -> None:
        cached, _ = steering_pair()
        first = cached.pair_distance(["05C40"], ["03E20"])
        assert cached.signature_cache_misses == 1
        second = cached.pair_distance(["05C40"], ["03E20"])
        assert second == first
        assert cached.signature_cache_hits == 1
        snapshot = cached.signature_cache_snapshot()
        assert snapshot["hit_rate"] == pytest.approx(0.5)

    def test_negative_cache_size_rejected(self) -> None:
        with pytest.raises(ValueError):
            ClassificationSteering(
                ClassificationGraph.from_scheme(small_scheme()),
                signature_cache_size=-1,
            )


class TestSignatures:
    def test_signature_is_sorted_unique_ids(self) -> None:
        cached, _ = steering_pair()
        signature = cached.signature(["05C40", "05C10", "05C40"])
        assert len(signature) == 2
        assert list(signature) == sorted(signature)

    def test_unknown_codes_intern_to_sentinel(self) -> None:
        cached, _ = steering_pair()
        assert cached.signature(["99Z99"]) == (UNKNOWN_CLASS_ID,)
        # Unknown classes are infinitely far (not "unclassified"):
        assert cached.pair_distance(["99Z99"], ["05C40"]) == INFINITE_DISTANCE

    def test_empty_classes_give_empty_signature(self) -> None:
        cached, _ = steering_pair()
        assert cached.signature([]) == ()
        assert cached.signature_distance((), (1,)) == INFINITE_DISTANCE

    def test_signature_distance_matches_pair_distance(self) -> None:
        cached, _ = steering_pair()
        for source in _CLASS_LISTS:
            for target in _CLASS_LISTS:
                assert cached.signature_distance(
                    cached.signature(source), cached.signature(target)
                ) == cached.pair_distance(source, target)


class TestInvalidation:
    def test_graph_mutation_invalidates_entries(self) -> None:
        cached, _ = steering_pair()
        far = cached.pair_distance(["05C40"], ["03E20"])
        assert cached.signature_cache_snapshot()["entries"] == 1
        # A zero-weight bridge collapses the cross-area distance; the
        # cached pair must not survive the mutation.
        cached.graph.add_edge("05C40", "03E20", 0.0)
        near = cached.pair_distance(["05C40"], ["03E20"])
        assert near == 0.0
        assert near < far

    def test_version_check_happens_per_probe(self) -> None:
        cached, _ = steering_pair()
        cached.pair_distance(["05C40"], ["05C10"])
        cached.pair_distance(["05C40"], ["03E20"])
        assert cached.signature_cache_snapshot()["entries"] == 2
        cached.graph.add_node("05D")
        # First probe after the mutation drops every stale entry.
        cached.pair_distance(["05C40"], ["05C10"])
        assert cached.signature_cache_snapshot()["entries"] == 1

    def test_cache_is_bounded(self) -> None:
        steering = ClassificationSteering(
            ClassificationGraph.from_scheme(small_scheme()), signature_cache_size=2
        )
        for target in (["05C10"], ["03E20"], ["05B"], ["05"]):
            steering.pair_distance(["05C40"], target)
        assert steering.signature_cache_snapshot()["entries"] <= 2
        # Evicted pairs are recomputed correctly (just not served).
        assert steering.pair_distance(["05C40"], ["05C10"]) == pytest.approx(2.0)


class TestConcurrency:
    def test_concurrent_readers_with_writer(self) -> None:
        """Readers probe while a writer mutates the graph; distances stay
        correct and the final state reflects the last graph version."""
        steering, reference = steering_pair()
        pairs = [
            (source, target) for source in _CLASS_LISTS for target in _CLASS_LISTS
        ]
        expected = {
            index: reference.pair_distance(source, target)
            for index, (source, target) in enumerate(pairs)
        }
        errors: list[str] = []
        start = threading.Barrier(5)

        def reader() -> None:
            start.wait()
            for _ in range(20):
                for index, (source, target) in enumerate(pairs):
                    got = steering.pair_distance(source, target)
                    if got != expected[index]:
                        errors.append(f"pair {index}: {got} != {expected[index]}")
                        return

        def writer() -> None:
            start.wait()
            for round_number in range(10):
                # New isolated nodes change the graph version without
                # changing any existing distance.
                steering.graph.add_node(f"77X{round_number:02d}")

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # A post-quiescence probe repopulates against the final version.
        assert steering.pair_distance(["05C40"], ["05C10"]) == expected[
            pairs.index((["05C40"], ["05C10"]))
        ]


class TestLinkerIntegration:
    def _linker(self) -> NNexus:
        linker = NNexus(scheme=build_small_msc())
        linker.add_objects(
            [
                CorpusObject(
                    object_id=1,
                    title="connectivity",
                    text="An article about graphs.",
                    defines=["graph"],
                    classes=["05C40"],
                ),
                CorpusObject(
                    object_id=2,
                    title="graph of a function",
                    text="An article about plots.",
                    defines=["graph"],
                    classes=["03E20"],
                ),
                CorpusObject(
                    object_id=3,
                    title="source",
                    text="Every graph has vertices.",
                    classes=["05C10"],
                ),
            ]
        )
        return linker

    def test_reclassification_changes_the_link(self) -> None:
        linker = self._linker()
        before = linker.link_object(3)
        assert [link.target_id for link in before.links] == [1]
        # Reclassify the source next to the set-theory homonym: the
        # cached signature must be dropped and the link move to 2.
        source = linker.get_object(3)
        source.classes[:] = ["03E20"]
        linker.update_object(source)
        after = linker.link_object(3)
        assert [link.target_id for link in after.links] == [2]

    def test_set_base_weight_rebuild_stays_consistent(self) -> None:
        linker = self._linker()
        before = linker.link_object(3)
        # Rebuilding the graph re-interns every code: old signatures
        # would index into the wrong id space if they survived.
        linker.set_base_weight(2.0)
        after = linker.link_object(3)
        assert [link.target_id for link in after.links] == [
            link.target_id for link in before.links
        ]

    def test_steering_disabled_linker_has_no_signature_metrics(self) -> None:
        linker = NNexus(scheme=None)
        names = {series["name"] for series in linker.metrics_snapshot()["counters"]}
        assert "nnexus_steer_signature_cache_hits" not in names

    def test_signature_metrics_exported(self) -> None:
        linker = self._linker()
        linker.link_object(3)
        counters = {
            series["name"]: series["value"]
            for series in linker.metrics_snapshot()["counters"]
        }
        assert counters["nnexus_steer_signature_cache_misses"] >= 1
