"""Tests for link-matrix CF, reputation and composite ranking."""

import pytest

from repro.core.classification import ClassificationSteering, ClassificationGraph
from repro.core.ranking import CompositeRanker, LinkMatrix, ReputationTable
from repro.ontology.msc import build_small_msc


class TestLinkMatrix:
    def test_record_and_row(self) -> None:
        matrix = LinkMatrix()
        matrix.record_document(1, [5, 9, 5])
        assert matrix.row(1) == {5: 2.0, 9: 1.0}

    def test_similarity_of_identical_profiles(self) -> None:
        matrix = LinkMatrix()
        matrix.record_document(1, [5, 9])
        matrix.record_document(2, [5, 9])
        assert matrix.similarity(1, 2) == pytest.approx(1.0)

    def test_similarity_disjoint_profiles(self) -> None:
        matrix = LinkMatrix()
        matrix.record_document(1, [5])
        matrix.record_document(2, [9])
        assert matrix.similarity(1, 2) == 0.0

    def test_similarity_unknown_entry(self) -> None:
        matrix = LinkMatrix()
        matrix.record_document(1, [5])
        assert matrix.similarity(1, 42) == 0.0

    def test_neighbors_sorted_positive_only(self) -> None:
        matrix = LinkMatrix()
        matrix.record_document(1, [5, 9])
        matrix.record_document(2, [5, 9])
        matrix.record_document(3, [5])
        matrix.record_document(4, [77])
        neighbors = matrix.neighbors(1, k=5)
        assert neighbors[0][0] == 2
        assert all(score > 0 for __, score in neighbors)
        assert 4 not in [other for other, __ in neighbors]

    def test_collaborative_score(self) -> None:
        matrix = LinkMatrix()
        # Entries 2 and 3 behave like entry 1 and both link target 9.
        matrix.record_document(1, [5])
        matrix.record_document(2, [5, 9])
        matrix.record_document(3, [5, 9])
        matrix.record_document(4, [70, 71])
        assert matrix.collaborative_score(1, 9) > 0.0
        assert matrix.collaborative_score(1, 70) == 0.0

    def test_len(self) -> None:
        matrix = LinkMatrix()
        matrix.record_link(1, 5)
        assert len(matrix) == 1


class TestReputation:
    def test_unrated_is_half(self) -> None:
        assert ReputationTable().reputation(5) == pytest.approx(0.5)

    def test_positive_feedback_raises(self) -> None:
        table = ReputationTable()
        for __ in range(10):
            table.record_feedback(5, helpful=True)
        assert table.reputation(5) > 0.8

    def test_negative_feedback_lowers(self) -> None:
        table = ReputationTable()
        for __ in range(10):
            table.record_feedback(5, helpful=False)
        assert table.reputation(5) < 0.2

    def test_smoothing_keeps_single_vote_moderate(self) -> None:
        table = ReputationTable(smoothing=2.0)
        table.record_feedback(5, helpful=False)
        assert 0.2 < table.reputation(5) < 0.5

    def test_invalid_smoothing(self) -> None:
        with pytest.raises(ValueError):
            ReputationTable(smoothing=0.0)


class TestCompositeRanker:
    def steering(self) -> ClassificationSteering:
        return ClassificationSteering(
            ClassificationGraph.from_scheme(build_small_msc())
        )

    def test_reduces_to_steering_without_extras(self) -> None:
        ranker = CompositeRanker(steering=self.steering())
        best = ranker.best(None, ["05C40"], {5: ["05C99"], 6: ["03E20"]})
        assert best == 5  # the Fig. 4 answer

    def test_reputation_breaks_class_ties(self) -> None:
        reputation = ReputationTable()
        for __ in range(20):
            reputation.record_feedback(9, helpful=True)
            reputation.record_feedback(4, helpful=False)
        ranker = CompositeRanker(steering=self.steering(), reputation=reputation)
        best = ranker.best(None, ["05C40"], {4: ["05C10"], 9: ["05C10"]})
        assert best == 9

    def test_cf_evidence_shifts_choice(self) -> None:
        matrix = LinkMatrix()
        # Sources similar to 1 always link to 6, never 5.
        matrix.record_document(1, [30, 31])
        matrix.record_document(2, [30, 31, 6])
        matrix.record_document(3, [30, 31, 6])
        ranker = CompositeRanker(
            steering=self.steering(), link_matrix=matrix, cf_weight=5.0
        )
        best = ranker.best(1, ["05C40"], {5: ["05C99"], 6: ["03E20"]})
        assert best == 6  # CF overwhelms the class signal at this weight

    def test_priority_component(self) -> None:
        ranker = CompositeRanker(
            steering=self.steering(), priorities={10: 2, 20: 1}
        )
        best = ranker.best(None, ["05C05"], {10: ["05C05"], 20: ["05C05"]})
        assert best == 20

    def test_rank_exposes_score_decomposition(self) -> None:
        ranker = CompositeRanker(steering=self.steering())
        ranked = ranker.rank(None, ["05C40"], {5: ["05C99"], 6: ["03E20"]})
        assert len(ranked) == 2
        assert ranked[0].class_score > ranked[1].class_score
        assert ranked[0].score >= ranked[1].score

    def test_unreachable_classes_score_zero(self) -> None:
        ranker = CompositeRanker(steering=self.steering())
        ranked = ranker.rank(None, ["05C40"], {5: ["NOPE99"]})
        assert ranked[0].class_score == 0.0

    def test_empty_candidates(self) -> None:
        ranker = CompositeRanker(steering=self.steering())
        assert ranker.best(None, ["05C40"], {}) is None
