"""Tests for link-source identification (the scan of Section 2.2)."""

from repro.core.concept_map import ConceptMap
from repro.core.matching import find_matches
from repro.core.tokenizer import Tokenizer


def scan(text: str, labels: list[tuple[str, int]], **kwargs):
    concept_map = ConceptMap()
    concept_map.bulk_load(labels)
    tokenized = Tokenizer().tokenize(text)
    return find_matches(tokenized, concept_map, **kwargs)


class TestLongestMatch:
    def test_longest_phrase_wins(self) -> None:
        matches = scan(
            "an orthogonal function appears",
            [("orthogonal", 1), ("function", 2), ("orthogonal function", 3)],
        )
        assert [m.surface for m in matches] == ["orthogonal function"]
        assert matches[0].candidates == (3,)

    def test_tokens_consumed_by_match(self) -> None:
        # "function" inside the longer match must not also match alone.
        matches = scan(
            "orthogonal function and function",
            [("function", 2), ("orthogonal function", 3)],
        )
        surfaces = [m.surface for m in matches]
        assert surfaces == ["orthogonal function", "function"]

    def test_overlapping_starts(self) -> None:
        matches = scan(
            "planar graph theory",
            [("planar graph", 1), ("graph theory", 2)],
        )
        # Longest match at position 0 consumes "planar graph"; "theory"
        # alone matches nothing.
        assert [m.surface for m in matches] == ["planar graph"]


class TestFirstOccurrence:
    def test_only_first_occurrence_linked(self) -> None:
        matches = scan("a graph and another graph", [("graph", 5)])
        assert len(matches) == 1
        assert matches[0].start == 1

    def test_all_occurrences_when_disabled(self) -> None:
        matches = scan(
            "a graph and another graph",
            [("graph", 5)],
            first_occurrence_only=False,
        )
        assert len(matches) == 2

    def test_morphological_variants_count_as_same(self) -> None:
        matches = scan("graphs here and a graph there", [("graph", 5)])
        assert len(matches) == 1
        assert matches[0].surface == "graphs"


class TestExclusion:
    def test_excluded_candidate_dropped(self) -> None:
        matches = scan("the graph here", [("graph", 5), ("graph", 6)],
                       exclude_objects=(5,))
        assert matches[0].candidates == (6,)

    def test_match_dropped_when_all_candidates_excluded(self) -> None:
        matches = scan("the graph here", [("graph", 5)], exclude_objects=(5,))
        assert matches == []

    def test_exclusion_releases_tokens_for_shorter_match(self) -> None:
        # The 2-word label is excluded; the 1-word label inside it should
        # then be found (longest-first probing falls through).
        matches = scan(
            "planar graph here",
            [("planar graph", 9), ("graph", 5)],
            exclude_objects=(9,),
        )
        assert [m.surface for m in matches] == ["graph"]


class TestMatchStructure:
    def test_match_records_span_and_surface(self) -> None:
        text = "see the Planar Graphs now"
        matches = scan(text, [("planar graph", 2)])
        match = matches[0]
        assert match.surface == "Planar Graphs"
        assert match.start == 2 and match.end == 4

    def test_candidates_sorted(self) -> None:
        matches = scan("a graph", [("graph", 9), ("graph", 3), ("graph", 5)])
        assert matches[0].candidates == (3, 5, 9)

    def test_no_matches_in_escaped_math(self) -> None:
        matches = scan("consider $a graph$ only", [("graph", 5)])
        assert matches == []

    def test_empty_text(self) -> None:
        assert scan("", [("graph", 5)]) == []

    def test_label_spanning_sentence_boundary_is_matched(self) -> None:
        # Tokenization ignores punctuation: this mirrors the generator's
        # guarantee that planted phrases sit inside one sentence.
        matches = scan("we use planar. graph follows", [("planar graph", 2)])
        assert len(matches) == 1
