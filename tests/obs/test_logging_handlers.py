"""Handler lifecycle in LogManager (REP103 regression).

``set_handlers`` used to drop the previous fan-out list without
closing it, so every ``configure_logging(jsonl_path=...)`` re-run
leaked the previous JSONL file handle.
"""

from __future__ import annotations

from repro.obs.logging import (
    LogManager,
    configure_logging,
    get_logger,
    jsonl_file_handler,
)


class _ClosableHandler:
    def __init__(self) -> None:
        self.records: list[dict] = []
        self.closed = False

    def __call__(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


class TestSetHandlersLifecycle:
    def test_replaced_handlers_are_closed(self) -> None:
        old = _ClosableHandler()
        new = _ClosableHandler()
        manager = LogManager(handlers=[old])
        manager.set_handlers([new])
        assert old.closed
        assert not new.closed

    def test_carried_over_handlers_stay_open(self) -> None:
        keep = _ClosableHandler()
        extra = _ClosableHandler()
        manager = LogManager(handlers=[keep])
        manager.set_handlers([keep, extra])
        assert not keep.closed

    def test_handlers_without_close_are_tolerated(self) -> None:
        events: list[dict] = []
        manager = LogManager(handlers=[events.append])
        manager.set_handlers([])  # must not raise

    def test_jsonl_handler_file_released_on_reconfigure(self, tmp_path) -> None:
        first = tmp_path / "first.jsonl"
        manager = LogManager(handlers=[jsonl_file_handler(first)])
        get_logger("t", manager=manager).info("before", n=1)
        manager.set_handlers([jsonl_file_handler(tmp_path / "second.jsonl")])
        # The first handler's file object is closed: emit would raise on
        # a closed file if the handler were still registered, and the
        # handle itself no longer accepts writes.
        get_logger("t", manager=manager).info("after", n=2)
        assert "before" in first.read_text()
        assert "after" not in first.read_text()

    def test_configure_logging_reruns_do_not_leak(self, tmp_path) -> None:
        manager = LogManager()
        first = tmp_path / "a.jsonl"
        configure_logging(jsonl_path=first, manager=manager)
        get_logger("t", manager=manager).info("one")
        configure_logging(jsonl_path=tmp_path / "b.jsonl", manager=manager)
        get_logger("t", manager=manager).info("two")
        text = first.read_text()
        assert "one" in text
        assert "two" not in text
