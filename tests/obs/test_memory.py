"""Tests for the per-component memory accounting layer."""

import sys
import threading
import time

import pytest

from repro.obs.memory import (
    NULL_ACCOUNTANT,
    SMALL_COMPONENT_BYTES,
    MemoryAccountant,
    deep_sizeof,
    estimate_container,
    estimate_dict_entry,
    estimate_object,
    estimate_set_entry,
    estimate_str,
    estimate_strs,
    within_ratio,
)


class TestEstimators:
    def test_str_estimate_tracks_getsizeof(self) -> None:
        for text in ("", "a", "hypotenuse", "x" * 500):
            actual = sys.getsizeof(text)
            estimate = estimate_str(text)
            assert abs(estimate - actual) <= max(16, actual * 0.2), text

    def test_strs_sums_parts(self) -> None:
        parts = ["alpha", "beta", "gamma"]
        assert estimate_strs(parts) == sum(estimate_str(p) for p in parts)

    def test_container_and_entry_estimates_are_positive(self) -> None:
        assert estimate_container(0) > 0
        assert estimate_container(10) > estimate_container(0)
        assert estimate_dict_entry(28) == estimate_dict_entry() + 28
        assert estimate_set_entry() > 0
        assert estimate_object(5) > estimate_object(0)


class TestDeepSizeof:
    def test_shared_objects_count_once(self) -> None:
        shared = "x" * 1000
        single = deep_sizeof(([shared],))
        doubled = deep_sizeof(([shared, shared],))
        # The second reference adds a list slot, not another kilobyte.
        assert doubled - single < 100

    def test_walks_dicts_instances_and_slots(self) -> None:
        class Slotted:
            __slots__ = ("payload",)

            def __init__(self) -> None:
                self.payload = "y" * 512

        class Plain:
            def __init__(self) -> None:
                self.data = {"key": "z" * 512}

        assert deep_sizeof((Slotted(),)) > 512
        assert deep_sizeof((Plain(),)) > 512

    def test_skips_classes_modules_and_functions(self) -> None:
        baseline = deep_sizeof(([],))
        with_refs = deep_sizeof(([str, sys, deep_sizeof],))
        assert with_refs <= baseline + 100

    def test_max_objects_bounds_traversal(self) -> None:
        big = [[i] for i in range(10_000)]
        bounded = deep_sizeof((big,), max_objects=10)
        unbounded = deep_sizeof((big,))
        assert 0 < bounded < unbounded


class TestNullAccountant:
    def test_inert_shape(self) -> None:
        assert NULL_ACCOUNTANT.enabled is False
        NULL_ACCOUNTANT.register("x", lambda: 1)
        assert NULL_ACCOUNTANT.sample() == {}
        assert NULL_ACCOUNTANT.peaks() == {}
        assert NULL_ACCOUNTANT.reconcile() == {}
        snap = NULL_ACCOUNTANT.snapshot()
        assert snap["components"] == {}
        NULL_ACCOUNTANT.start()
        NULL_ACCOUNTANT.stop()


class TestMemoryAccountant:
    def test_rejects_non_positive_interval(self) -> None:
        with pytest.raises(ValueError):
            MemoryAccountant(reconcile_interval_sec=0.0)

    def test_sample_reads_estimates_and_tracks_peaks(self) -> None:
        accountant = MemoryAccountant()
        size = {"value": 100}
        accountant.register("comp", lambda: size["value"])
        assert accountant.sample() == {"comp": 100}
        size["value"] = 500
        assert accountant.sample() == {"comp": 500}
        size["value"] = 50
        assert accountant.sample() == {"comp": 50}
        assert accountant.peaks() == {"comp": 500}

    def test_reconcile_reports_ratio_against_deep_walk(self) -> None:
        accountant = MemoryAccountant()
        payload = ["x" * 4096 for _ in range(8)]
        true_size = deep_sizeof((payload,))
        accountant.register("comp", lambda: true_size, lambda: (payload,))
        report = accountant.reconcile()
        assert report["comp"]["estimate"] == float(true_size)
        assert report["comp"]["deep"] == float(true_size)
        assert report["comp"]["ratio"] == 1.0
        assert within_ratio(report)

    def test_tiny_components_pin_to_ratio_one(self) -> None:
        accountant = MemoryAccountant()
        # Estimate 0 vs a non-empty shell: below the smallness floor the
        # discrepancy is fixed-shell noise, not estimator drift.
        accountant.register("idle", lambda: 0, lambda: ({},))
        report = accountant.reconcile()
        assert report["idle"]["ratio"] == 1.0
        assert report["idle"]["deep"] <= SMALL_COMPONENT_BYTES

    def test_snapshot_carries_reconcile_age_and_count(self) -> None:
        accountant = MemoryAccountant()
        accountant.register("comp", lambda: 10, lambda: ([],))
        before = accountant.snapshot()
        assert before["reconcile_age_sec"] is None
        assert before["reconcile_count"] == 0
        accountant.reconcile()
        after = accountant.snapshot()
        assert after["reconcile_count"] == 1
        assert after["reconcile_age_sec"] >= 0.0
        assert after["components"]["comp"]["bytes"] == 10

    def test_unregister_removes_component(self) -> None:
        accountant = MemoryAccountant()
        accountant.register("gone", lambda: 1)
        accountant.unregister("gone")
        assert accountant.sample() == {}

    def test_periodic_reconciler_thread_runs_and_stops(self) -> None:
        accountant = MemoryAccountant(reconcile_interval_sec=0.01)
        accountant.register("comp", lambda: 10, lambda: ([],))
        accountant.start()
        try:
            deadline = time.monotonic() + 5.0
            while (
                accountant.snapshot()["reconcile_count"] < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        finally:
            accountant.stop()
        assert accountant.snapshot()["reconcile_count"] >= 2
        assert not any(
            thread.name == "nnexus-memory-reconciler"
            for thread in threading.enumerate()
        )

    def test_start_without_interval_is_a_noop(self) -> None:
        accountant = MemoryAccountant()
        accountant.start()
        assert not any(
            thread.name == "nnexus-memory-reconciler"
            for thread in threading.enumerate()
        )
        accountant.stop()


class TestWithinRatio:
    def test_bounds_are_symmetric(self) -> None:
        good = {"a": {"ratio": 1.5}, "b": {"ratio": 0.6}}
        assert within_ratio(good, bound=2.0)
        assert not within_ratio({"a": {"ratio": 2.5}}, bound=2.0)
        assert not within_ratio({"a": {"ratio": 0.4}}, bound=2.0)
        assert not within_ratio({"a": {"ratio": float("inf")}}, bound=2.0)
