"""Tests for the linking benchmark harness and its report schema."""

import copy

from repro.obs.bench import (
    SCALING_WORKER_COUNTS,
    SCHEMA_VERSION,
    STAGES,
    BenchParams,
    check_regression,
    run_linking_bench,
    validate_report,
)

# Small enough to keep the suite fast; large enough for every stage to
# fire.  Scaling is off here (it spawns process pools) and persistence
# is off (it fsyncs every commit) — each has a dedicated test below.
_PARAMS = BenchParams(
    entries=40, seed=7, smoke=True, metrics=True, scaling=False, persistence=False
)


def test_report_passes_its_own_schema() -> None:
    report = run_linking_bench(_PARAMS)
    assert validate_report(report) == []


def test_identity_fields_are_deterministic() -> None:
    first = run_linking_bench(_PARAMS)
    second = run_linking_bench(_PARAMS)
    for section in ("params", "corpus", "links"):
        assert first[section] == second[section]
    assert first["cache"]["hits"] == second["cache"]["hits"]
    assert first["cache"]["misses"] == second["cache"]["misses"]


def test_warm_pass_hits_the_cache() -> None:
    report = run_linking_bench(_PARAMS)
    # Cold pass misses every entry once; warm pass hits every entry once.
    assert report["cache"]["misses"] == report["corpus"]["objects"]
    assert report["cache"]["hits"] == report["corpus"]["objects"]
    assert report["cache"]["hit_rate"] == 0.5


def test_metrics_run_covers_every_stage() -> None:
    report = run_linking_bench(_PARAMS)
    assert set(report["stages"]) == set(STAGES)
    for stage in STAGES:
        assert report["stages"][stage]["count"] > 0, stage


def test_no_metrics_run_has_empty_stages_and_validates() -> None:
    report = run_linking_bench(
        BenchParams(entries=40, seed=7, smoke=True, metrics=False, scaling=False,
                    persistence=False)
    )
    assert report["stages"] == {}
    assert validate_report(report) == []


def test_persistence_run_reports_durability_section() -> None:
    report = run_linking_bench(
        BenchParams(entries=30, seed=7, smoke=True, metrics=False, scaling=False,
                    persistence=True)
    )
    durability = report["persistence"]
    assert durability["backend"] == "engine"
    assert durability["sync"] == "always"
    assert durability["restored_objects"] == durability["entries"] == 30
    assert durability["wal_bytes"] > 0
    assert durability["cold_start_sec"] > 0.0
    assert durability["wal_overhead_ratio"] > 0.0
    assert validate_report(report) == []


def test_steering_section_reports_signature_cache() -> None:
    report = run_linking_bench(_PARAMS)
    steering = report["steering"]
    # Two full corpus passes: the warm pass is served by the render
    # cache, but the cold pass alone already revisits signature pairs.
    assert steering["signature_cache_misses"] > 0
    assert steering["signature_cache_entries"] > 0
    assert 0.0 <= steering["signature_cache_hit_rate"] <= 1.0


def test_scaling_run_reports_batch_section() -> None:
    report = run_linking_bench(
        BenchParams(entries=30, seed=7, smoke=True, metrics=False, scaling=True)
    )
    scaling = report["batch_scaling"]
    assert scaling["mode"] == "process"
    assert [run["workers"] for run in scaling["runs"]] == list(SCALING_WORKER_COUNTS)
    # Every worker count links the identical corpus.
    assert len({run["links"] for run in scaling["runs"]}) == 1
    assert scaling["speedups"]["1"] == 1.0
    assert validate_report(report) == []


def test_validate_rejects_broken_reports() -> None:
    good = run_linking_bench(_PARAMS)

    assert validate_report("not a dict") == ["report must be a JSON object"]

    wrong_version = copy.deepcopy(good)
    wrong_version["schema_version"] = SCHEMA_VERSION + 1
    assert any("schema_version" in p for p in validate_report(wrong_version))

    missing_section = copy.deepcopy(good)
    del missing_section["throughput"]
    assert any("throughput" in p for p in validate_report(missing_section))

    bad_type = copy.deepcopy(good)
    bad_type["corpus"]["tokens"] = "many"
    assert any("corpus.tokens" in p for p in validate_report(bad_type))

    bool_not_int = copy.deepcopy(good)
    bool_not_int["links"]["links"] = True
    assert any("links.links" in p for p in validate_report(bool_not_int))

    untimed_stage = copy.deepcopy(good)
    untimed_stage["stages"]["render"]["count"] = 0
    assert any("never timed" in p for p in validate_report(untimed_stage))

    missing_stage = copy.deepcopy(good)
    del missing_stage["stages"]["steer"]
    assert any("stages.steer" in p for p in validate_report(missing_stage))

    missing_steering = copy.deepcopy(good)
    del missing_steering["steering"]
    assert any("steering" in p for p in validate_report(missing_steering))

    missing_scaling = copy.deepcopy(good)
    del missing_scaling["batch_scaling"]
    assert any("batch_scaling" in p for p in validate_report(missing_scaling))

    empty_scaling_run = copy.deepcopy(good)
    empty_scaling_run["params"]["scaling"] = True
    empty_scaling_run["batch_scaling"] = {"mode": "process", "entries": 40}
    problems = validate_report(empty_scaling_run)
    assert any("batch_scaling.runs" in p for p in problems)
    assert any("batch_scaling.speedups" in p for p in problems)

    missing_persistence = copy.deepcopy(good)
    del missing_persistence["persistence"]
    assert any("persistence" in p for p in validate_report(missing_persistence))

    lossy_restore = copy.deepcopy(good)
    lossy_restore["params"]["persistence"] = True
    lossy_restore["persistence"] = {
        "backend": "engine", "sync": "always", "entries": 40,
        "ingest_memory_sec": 0.1, "ingest_journaled_sec": 0.2,
        "wal_overhead_ratio": 2.0, "wal_bytes": 1024,
        "cold_start_sec": 0.1, "restored_objects": 39,
    }
    assert any("lost corpus objects" in p for p in validate_report(lossy_restore))


def test_check_regression_gates_on_steer_share() -> None:
    baseline = run_linking_bench(_PARAMS)
    # A re-run of the same corpus on the same machine must pass.
    assert check_regression(run_linking_bench(_PARAMS), baseline) == []

    # Losing the steering fast path (steer balloons to most of the cold
    # pass) must fail, with both limits quoted in the message.
    regressed = copy.deepcopy(baseline)
    regressed["stages"]["steer"]["sum_sec"] = (
        regressed["throughput"]["cold_elapsed_sec"] * 0.9
    )
    problems = check_regression(regressed, baseline)
    assert len(problems) == 1
    assert "steer stage regressed" in problems[0]

    # Small jitter within the absolute tolerance passes even when the
    # relative limit is exceeded (tiny baselines would be flaky gates).
    jitter = copy.deepcopy(baseline)
    jitter["stages"]["steer"]["sum_sec"] = (
        baseline["stages"]["steer"]["sum_sec"]
        + 0.04 * baseline["throughput"]["cold_elapsed_sec"]
    )
    assert check_regression(jitter, baseline) == []

    # Reports without steer timings cannot be gated.
    no_stages = copy.deepcopy(baseline)
    no_stages["stages"] = {}
    assert any("current report" in p for p in check_regression(no_stages, baseline))
    assert any("baseline report" in p for p in check_regression(baseline, no_stages))


def test_resources_section_reconciles_and_profiles() -> None:
    report = run_linking_bench(_PARAMS)
    resources = report["resources"]
    assert set(resources["components"]) == {
        "objects", "map_segments", "invalidation",
        "render_cache", "trace_ring", "metrics",
    }
    for name, component in resources["components"].items():
        assert component["bytes"] >= 0, name
        assert component["peak_bytes"] >= component["bytes"], name
    assert resources["within_2x"] is True
    assert resources["profiler"]["samples"] > 0
    assert resources["profiler"]["distinct_stacks"] > 0


def test_profile_overhead_keeps_renderings_identical() -> None:
    from repro.obs.bench import measure_profile_overhead

    overhead = measure_profile_overhead(
        BenchParams(entries=40, seed=7, smoke=True, metrics=False,
                    scaling=False, persistence=False, paging=False,
                    resources=False)
    )
    assert overhead["renderings_identical"] is True
    assert overhead["profile_samples"] > 0
    assert overhead["collapsed"].strip() != ""


def test_resources_off_still_validates() -> None:
    report = run_linking_bench(
        BenchParams(entries=40, seed=7, smoke=True, metrics=True,
                    scaling=False, persistence=False, paging=False,
                    resources=False)
    )
    assert report["resources"] == {}
    assert validate_report(report) == []
