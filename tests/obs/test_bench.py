"""Tests for the linking benchmark harness and its report schema."""

import copy

from repro.obs.bench import (
    SCHEMA_VERSION,
    STAGES,
    BenchParams,
    run_linking_bench,
    validate_report,
)

# Small enough to keep the suite fast; large enough for every stage to fire.
_PARAMS = BenchParams(entries=40, seed=7, smoke=True, metrics=True)


def test_report_passes_its_own_schema() -> None:
    report = run_linking_bench(_PARAMS)
    assert validate_report(report) == []


def test_identity_fields_are_deterministic() -> None:
    first = run_linking_bench(_PARAMS)
    second = run_linking_bench(_PARAMS)
    for section in ("params", "corpus", "links"):
        assert first[section] == second[section]
    assert first["cache"]["hits"] == second["cache"]["hits"]
    assert first["cache"]["misses"] == second["cache"]["misses"]


def test_warm_pass_hits_the_cache() -> None:
    report = run_linking_bench(_PARAMS)
    # Cold pass misses every entry once; warm pass hits every entry once.
    assert report["cache"]["misses"] == report["corpus"]["objects"]
    assert report["cache"]["hits"] == report["corpus"]["objects"]
    assert report["cache"]["hit_rate"] == 0.5


def test_metrics_run_covers_every_stage() -> None:
    report = run_linking_bench(_PARAMS)
    assert set(report["stages"]) == set(STAGES)
    for stage in STAGES:
        assert report["stages"][stage]["count"] > 0, stage


def test_no_metrics_run_has_empty_stages_and_validates() -> None:
    report = run_linking_bench(
        BenchParams(entries=40, seed=7, smoke=True, metrics=False)
    )
    assert report["stages"] == {}
    assert validate_report(report) == []


def test_validate_rejects_broken_reports() -> None:
    good = run_linking_bench(_PARAMS)

    assert validate_report("not a dict") == ["report must be a JSON object"]

    wrong_version = copy.deepcopy(good)
    wrong_version["schema_version"] = SCHEMA_VERSION + 1
    assert any("schema_version" in p for p in validate_report(wrong_version))

    missing_section = copy.deepcopy(good)
    del missing_section["throughput"]
    assert any("throughput" in p for p in validate_report(missing_section))

    bad_type = copy.deepcopy(good)
    bad_type["corpus"]["tokens"] = "many"
    assert any("corpus.tokens" in p for p in validate_report(bad_type))

    bool_not_int = copy.deepcopy(good)
    bool_not_int["links"]["links"] = True
    assert any("links.links" in p for p in validate_report(bool_not_int))

    untimed_stage = copy.deepcopy(good)
    untimed_stage["stages"]["render"]["count"] = 0
    assert any("never timed" in p for p in validate_report(untimed_stage))

    missing_stage = copy.deepcopy(good)
    del missing_stage["stages"]["steer"]
    assert any("stages.steer" in p for p in validate_report(missing_stage))
