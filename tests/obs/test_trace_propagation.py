"""End-to-end trace propagation: client -> server -> linker -> gateway.

The acceptance scenario for the tracing subsystem: one request produces
ONE retrievable trace holding the client's attempt spans, the server's
root span and every pipeline stage span, with structured log records
emitted during handling carrying the trace id.  Wire compatibility is
asserted both ways — old clients without ``traceparent`` still get
valid responses (plus a server-minted trace id), and inbound W3C
headers are continued, not replaced.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.batch import BatchLinker
from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.obs.logging import DEFAULT_MANAGER
from repro.obs.trace import Tracer, format_traceparent, parse_traceparent
from repro.ontology.msc import build_small_msc
from repro.server import protocol
from repro.server.client import NNexusClient, RemoteError
from repro.server.faults import FaultInjector
from repro.server.http_gateway import serve_http
from repro.server.resilience import RetryPolicy
from repro.server.server import serve_forever

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


def make_linker(tracer=None):
    linker = NNexus(scheme=build_small_msc(), tracer=tracer)
    linker.add_objects(sample_corpus())
    return linker


@pytest.fixture()
def tracer():
    return Tracer(seed=20090612)


@pytest.fixture()
def faults():
    return FaultInjector()


@pytest.fixture()
def server(tracer, faults):
    instance = serve_forever(make_linker(tracer), faults=faults)
    yield instance
    instance.shutdown()
    instance.server_close()


@pytest.fixture()
def capture_logs():
    """Capture DEFAULT_MANAGER records at debug level, then restore."""
    records = []
    DEFAULT_MANAGER.add_handler(records.append)
    DEFAULT_MANAGER.set_level("debug")
    yield records
    DEFAULT_MANAGER.set_level("info")
    DEFAULT_MANAGER.remove_handler(records.append)


class TestClientRetryTracing:
    def test_retries_are_attempt_spans_in_one_trace(self, server, faults, tracer) -> None:
        faults.force_error("overloaded", on_request=1)
        with NNexusClient(*server.address, retry=FAST_RETRY, tracer=tracer) as client:
            assert client.ping()
        assert faults.requests_seen == 2
        # The retried call is ONE trace: a client.ping root plus one
        # client.attempt span per try (first errored, second clean).
        traces = [
            trace
            for trace in tracer.recent_traces()
            if any(span["name"] == "client.ping" for span in trace["spans"])
        ]
        assert len(traces) == 1
        spans = traces[0]["spans"]
        attempts = sorted(
            (span for span in spans if span["name"] == "client.attempt"),
            key=lambda span: span["attributes"]["attempt"],
        )
        assert [span["attributes"]["attempt"] for span in attempts] == [1, 2]
        assert attempts[0]["status"] == "error"
        assert attempts[1]["status"] == "ok"
        root = next(span for span in spans if span["name"] == "client.ping")
        assert all(span["parent_id"] == root["span_id"] for span in attempts)

    def test_attempt_injects_fresh_traceparent_per_try(self, server, faults, tracer) -> None:
        faults.force_error("overloaded", on_request=1)
        with NNexusClient(*server.address, retry=FAST_RETRY, tracer=tracer) as client:
            client.describe()
        trace = tracer.recent_traces()[0]
        attempts = [
            span for span in trace["spans"] if span["name"] == "client.attempt"
        ]
        # The server's root span (shared tracer) parents to the attempt
        # that reached it — attempt 2, since attempt 1 was shed.
        server_spans = [
            span for span in trace["spans"] if span["name"] == "server.describe"
        ]
        assert len(server_spans) == 1
        succeeded = next(
            span for span in attempts if span["attributes"]["attempt"] == 2
        )
        assert server_spans[0]["parent_id"] == succeeded["span_id"]
        assert server_spans[0]["remote_parent"] is True


class TestEndToEndTrace:
    def test_link_entry_yields_one_full_trace(self, server, tracer, capture_logs) -> None:
        with NNexusClient(*server.address, tracer=tracer) as client:
            body, links = client.link_entry(
                "every planar graph is sparse", classes=["05C10"]
            )
        assert links and links[0]["phrase"] == "planar graph"

        roots = [
            trace
            for trace in tracer.recent_traces()
            if any(span["name"] == "client.linkEntry" for span in trace["spans"])
        ]
        assert len(roots) == 1
        trace = roots[0]
        names = [span["name"] for span in trace["spans"]]
        # Client call + attempt, server root, linker wrapper and all
        # five pipeline stages — one trace end to end.
        for expected in (
            "client.linkEntry",
            "client.attempt",
            "server.linkEntry",
            "linker.link_text",
            "stage.tokenize",
            "stage.match",
            "stage.policy",
            "stage.steer",
            "stage.render",
        ):
            assert expected in names, f"missing span {expected!r} in {names}"

        # The same trace is retrievable over the wire.
        with NNexusClient(*server.address) as plain:
            fetched = plain.get_trace(trace["trace_id"])
        assert fetched["trace_id"] == trace["trace_id"]
        assert {span["name"] for span in fetched["spans"]} >= set(names)

        # Structured log records emitted during handling carry the id.
        handled = [
            record for record in capture_logs if record["event"] == "server.request"
        ]
        assert any(record["trace_id"] == trace["trace_id"] for record in handled)
        assert all(record["trace_id"] for record in handled)

    def test_untraced_client_gets_server_minted_trace_id(self, server) -> None:
        with NNexusClient(*server.address) as client:
            response = client._call(protocol.Request("ping"))
        trace_id = response.fields.get("traceid", "")
        assert len(trace_id) == 32
        int(trace_id, 16)
        # And the request without a traceparent field still round-trips.
        assert response.ok

    def test_error_response_carries_trace_id(self, server, tracer) -> None:
        with NNexusClient(*server.address, retry=RetryPolicy.none()) as client:
            with pytest.raises(RemoteError):
                client._call(
                    protocol.Request("linkEntry", fields={"format": "nope"})
                )
        # The failed request's trace exists and its root is errored.
        traces = tracer.recent_traces()
        errored = [
            span
            for trace in traces
            for span in trace["spans"]
            if span["name"] == "server.linkEntry" and span["status"] == "error"
        ]
        assert errored

    def test_get_recent_traces_wire_method(self, server, tracer) -> None:
        with NNexusClient(*server.address) as client:
            client.ping()
            recent = client.get_recent_traces(limit=5)
        assert recent
        assert all("spans" in trace for trace in recent)

    def test_get_trace_requires_trace_id(self, server) -> None:
        with NNexusClient(*server.address, retry=RetryPolicy.none()) as client:
            with pytest.raises(RemoteError):
                client._call(protocol.Request("getTrace"))
            with pytest.raises(RemoteError):
                client.get_trace("deadbeef" * 4)  # unknown id

    def test_trace_retrieval_bypasses_draining(self, server, tracer) -> None:
        with NNexusClient(*server.address, retry=RetryPolicy.none()) as client:
            client.ping()
            server._draining.set()
            try:
                with pytest.raises(RemoteError):
                    client.ping()
                assert client.get_recent_traces()
            finally:
                server._draining.clear()


class TestGatewayPropagation:
    @pytest.fixture()
    def gateway(self, tracer):
        instance = serve_http(make_linker(tracer))
        yield instance
        instance.shutdown()
        instance.server_close()

    def _request(self, gateway, path, headers=None, payload=None):
        host, port = gateway.address
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=data,
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST" if data is not None else "GET",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), json.loads(response.read())

    def test_inbound_traceparent_is_continued(self, gateway) -> None:
        inbound_trace = "ab" * 16
        header = format_traceparent(inbound_trace, "cd" * 8)
        status, headers, payload = self._request(
            gateway,
            "/link",
            headers={"traceparent": header},
            payload={"text": "every planar graph is sparse", "classes": ["05C10"]},
        )
        assert status == 200 and payload["linkcount"] == 1
        assert headers["x-request-id"] == inbound_trace
        parsed = parse_traceparent(headers["traceparent"])
        assert parsed is not None and parsed[0] == inbound_trace

    def test_no_traceparent_mints_request_id(self, gateway) -> None:
        __, headers, __ = self._request(gateway, "/describe")
        trace_id = headers["x-request-id"]
        assert len(trace_id) == 32
        int(trace_id, 16)

    def test_debug_traces_list_and_fetch(self, gateway) -> None:
        __, headers, __ = self._request(
            gateway, "/link", payload={"text": "the graph", "classes": ["05C40"]}
        )
        trace_id = headers["x-request-id"]
        __, __, listing = self._request(gateway, "/debug/traces?limit=3")
        assert any(trace["trace_id"] == trace_id for trace in listing["traces"])
        assert len(listing["traces"]) <= 3
        __, __, fetched = self._request(gateway, f"/debug/traces/{trace_id}")
        names = {span["name"] for span in fetched["spans"]}
        assert "http.POST" in names
        assert "stage.render" in names

    def test_debug_traces_unknown_id_404(self, gateway) -> None:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._request(gateway, "/debug/traces/" + "ee" * 16)
        assert excinfo.value.code == 404
        excinfo.value.close()

    def test_debug_traces_available_while_not_ready(self, gateway) -> None:
        gateway.set_ready(False)
        try:
            status, __, __ = self._request(gateway, "/debug/traces")
            assert status == 200
        finally:
            gateway.set_ready(True)

    def test_debug_traces_404_when_tracing_disabled(self) -> None:
        instance = serve_http(make_linker())
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._request(instance, "/debug/traces")
            assert excinfo.value.code == 404
            excinfo.value.close()
        finally:
            instance.shutdown()
            instance.server_close()


class TestBatchTracing:
    def test_thread_mode_batch_spans_form_one_tree(self, tracer) -> None:
        linker = make_linker(tracer)
        ids = linker.object_ids()[:4]
        report = BatchLinker(linker, fmt=None, workers=2).run(object_ids=ids)
        assert report.entries == 4
        batch_traces = [
            trace
            for trace in tracer.recent_traces()
            if any(span["name"] == "batch.run" for span in trace["spans"])
        ]
        assert len(batch_traces) == 1
        spans = batch_traces[0]["spans"]
        root = next(span for span in spans if span["name"] == "batch.run")
        entries = [span for span in spans if span["name"] == "batch.entry"]
        assert len(entries) == 4
        assert all(span["parent_id"] == root["span_id"] for span in entries)
        assert {span["attributes"]["object_id"] for span in entries} == set(ids)
        # Linker stage spans nest under the per-document spans.
        entry_ids = {span["span_id"] for span in entries}
        stage_spans = [span for span in spans if span["name"].startswith("stage.")]
        link_spans = [span for span in spans if span["name"] == "linker.link_text"]
        assert link_spans and all(
            span["parent_id"] in entry_ids for span in link_spans
        )
        assert stage_spans
