"""Tests for the serving benchmark harness and its report schema.

One real benchmark run (tiny, shared across the module) exercises the
live-server path end to end; everything else validates the schema and
gate logic against synthetic reports so the suite stays fast.
"""

import copy
import json

import pytest

from repro.obs.serving import (
    PING_P50_GATE_MS,
    SERVING_SCHEMA_VERSION,
    ServingParams,
    check_serving_regression,
    run_serving_bench,
    validate_serving_report,
)

# Small enough to keep the suite fast (one burst of 60 per transport,
# one short curve point each); large enough that every section of the
# report is populated from live traffic and the pipelined transport's
# advantage clears run-to-run jitter.
_PARAMS = ServingParams(
    smoke=True,
    seed=7,
    burst_requests=60,
    curve_fractions=(0.5,),
    curve_duration_s=0.3,
    serial_concurrency=4,
    pipelined_concurrency=8,
    pipeline_workers=8,
    overhead_samples=20,
)


@pytest.fixture(scope="module")
def report() -> dict:
    return run_serving_bench(_PARAMS)


class TestLiveRun:
    def test_report_passes_its_own_schema(self, report: dict) -> None:
        assert validate_serving_report(report) == []

    def test_report_is_json_serializable(self, report: dict) -> None:
        decoded = json.loads(json.dumps(report))
        assert validate_serving_report(decoded) == []

    def test_correctness_is_perfect(self, report: dict) -> None:
        assert report["correctness"]["checked"] > 0
        assert report["correctness"]["mismatches"] == 0

    def test_pipelining_beats_serial_baseline(self, report: dict) -> None:
        throughput = report["throughput"]
        assert (
            throughput["pipelined_max_sustained_rps"]
            > throughput["serial_max_sustained_rps"]
        )
        assert throughput["pipelined_speedup"] > 1.0

    def test_no_transport_errors(self, report: dict) -> None:
        assert report["throughput"]["serial_errors"] == 0
        assert report["throughput"]["pipelined_errors"] == 0

    def test_curves_cover_both_transports(self, report: dict) -> None:
        for mode in ("serial", "pipelined"):
            points = report["latency_curves"][mode]
            assert len(points) == len(_PARAMS.curve_fractions)
            for point in points:
                assert point["completed"] > 0
                # Sorted percentiles of one latency sample set.
                assert point["p50_ms"] <= point["p95_ms"] <= point["p99_ms"]

    def test_gate_passes_on_its_own_output(self, report: dict) -> None:
        assert check_serving_regression(report) == []
        assert check_serving_regression(report, baseline=report) == []


class TestSchemaValidation:
    def test_rejects_non_object(self) -> None:
        assert validate_serving_report([]) != []
        assert validate_serving_report(None) != []

    def test_rejects_wrong_schema_version(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        bad["schema_version"] = SERVING_SCHEMA_VERSION + 1
        assert any("schema_version" in p for p in validate_serving_report(bad))

    def test_rejects_missing_section(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        del bad["throughput"]
        assert any("throughput" in p for p in validate_serving_report(bad))

    def test_rejects_bool_where_number_expected(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        bad["throughput"]["pipelined_speedup"] = True
        assert any("pipelined_speedup" in p for p in validate_serving_report(bad))

    def test_rejects_empty_curve(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        bad["latency_curves"]["pipelined"] = []
        assert any("pipelined" in p for p in validate_serving_report(bad))

    def test_rejects_malformed_curve_point(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        del bad["latency_curves"]["serial"][0]["p99_ms"]
        assert any("p99_ms" in p for p in validate_serving_report(bad))


class TestRegressionGate:
    def test_invalid_report_fails_closed(self) -> None:
        failures = check_serving_regression({"schema_version": 999})
        assert failures
        assert all(f.startswith("current report invalid") for f in failures)

    def test_mismatches_fail_the_gate(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        bad["correctness"]["mismatches"] = 3
        assert any("mismatches" in f for f in check_serving_regression(bad))

    def test_zero_checked_fails_the_gate(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        bad["correctness"]["checked"] = 0
        bad["correctness"]["mismatches"] = 0
        assert any("checked" in f for f in check_serving_regression(bad))

    def test_slow_ping_fails_the_gate(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        bad["protocol_overhead"]["ping_p50_ms"] = PING_P50_GATE_MS + 1.0
        assert any("ping_p50_ms" in f for f in check_serving_regression(bad))

    def test_non_strict_speedup_fails_the_gate(self, report: dict) -> None:
        bad = copy.deepcopy(report)
        bad["throughput"]["pipelined_max_sustained_rps"] = bad["throughput"][
            "serial_max_sustained_rps"
        ]
        assert any("strictly above" in f for f in check_serving_regression(bad))

    def test_baseline_schema_mismatch_fails(self, report: dict) -> None:
        stale = copy.deepcopy(report)
        stale["schema_version"] = SERVING_SCHEMA_VERSION + 1
        assert any(
            "baseline schema_version" in f
            for f in check_serving_regression(report, baseline=stale)
        )
