"""Tests for the background sampling profiler."""

import re
import threading
import time

import pytest

from repro.obs.profile import (
    MAX_STACK_DEPTH,
    NULL_PROFILER,
    NullProfiler,
    SamplingProfiler,
)

_COLLAPSED_LINE = re.compile(r"^[^ ;][^ ]*(;[^ ]+)* \d+$")


def _busy_thread(stop: threading.Event) -> threading.Thread:
    def spin() -> None:
        while not stop.is_set():
            sum(range(500))

    thread = threading.Thread(target=spin, name="busy", daemon=True)
    thread.start()
    return thread


class TestNullProfiler:
    def test_is_disabled_and_inert(self) -> None:
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.running is False
        NULL_PROFILER.start()
        assert NULL_PROFILER.running is False
        assert NULL_PROFILER.sample_count() == 0
        NULL_PROFILER.stop()

    def test_snapshot_is_empty_but_well_formed(self) -> None:
        snap = NULL_PROFILER.snapshot()
        assert snap["enabled"] is False
        assert snap["samples"] == 0
        assert snap["stacks"] == []
        assert snap["top"] == []
        assert NULL_PROFILER.collapsed() == ""

    def test_context_manager_shape(self) -> None:
        with NullProfiler() as prof:
            assert prof.running is False


class TestSamplingProfiler:
    def test_rejects_non_positive_interval(self) -> None:
        with pytest.raises(ValueError):
            SamplingProfiler(interval_sec=0.0)

    def test_captures_stacks_from_other_threads(self) -> None:
        stop = threading.Event()
        busy = _busy_thread(stop)
        profiler = SamplingProfiler(interval_sec=0.001)
        profiler.start()
        try:
            deadline = time.monotonic() + 5.0
            while profiler.sample_count() < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            profiler.stop()
            stop.set()
            busy.join()
        snap = profiler.snapshot()
        assert snap["enabled"] is True
        assert snap["samples"] >= 5
        assert snap["distinct_stacks"] >= 1
        assert snap["duration_sec"] > 0.0
        # The busy loop's frame must be attributed somewhere.
        frames = [f for s in snap["stacks"] for f in s["frames"]]
        assert any("spin" in frame for frame in frames)

    def test_start_stop_are_idempotent_and_aggregate_survives(self) -> None:
        profiler = SamplingProfiler(interval_sec=0.001)
        profiler.start()
        profiler.start()  # second start is a no-op, not a second thread
        assert (
            sum(
                thread.name == "nnexus-profiler"
                for thread in threading.enumerate()
            )
            == 1
        )
        deadline = time.monotonic() + 5.0
        while profiler.sample_count() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        profiler.stop()
        profiler.stop()
        samples = profiler.sample_count()
        assert samples > 0
        assert profiler.running is False
        # A stopped profiler keeps its aggregate until reset().
        assert profiler.snapshot()["samples"] == samples
        profiler.reset()
        assert profiler.sample_count() == 0
        assert profiler.collapsed() == ""

    def test_snapshot_sorts_by_weight_and_honours_max_stacks(self) -> None:
        profiler = SamplingProfiler(interval_sec=0.001)
        profiler._stacks = {
            ("main", "a"): 3,
            ("main", "b"): 7,
            ("main", "c"): 5,
        }
        profiler._samples = 15
        snap = profiler.snapshot(max_stacks=2)
        assert snap["distinct_stacks"] == 3  # total, not truncated
        assert [s["count"] for s in snap["stacks"]] == [7, 5]
        assert snap["top"][0] == {"frame": "b", "count": 7}

    def test_collapsed_format_is_flamegraph_consumable(self) -> None:
        profiler = SamplingProfiler(interval_sec=0.001)
        profiler._stacks = {
            ("mod.root", "mod.leaf"): 2,
            ("mod.root", "mod.other", "mod.deep"): 1,
        }
        text = profiler.collapsed()
        lines = text.splitlines()
        assert lines[0] == "mod.root;mod.leaf 2"
        assert lines[1] == "mod.root;mod.other;mod.deep 1"
        for line in lines:
            assert _COLLAPSED_LINE.match(line), line

    def test_stack_depth_is_bounded(self) -> None:
        stop = threading.Event()

        def recurse(depth: int) -> None:
            if depth > 0:
                recurse(depth - 1)
            else:
                stop.wait()

        thread = threading.Thread(
            target=recurse, args=(MAX_STACK_DEPTH * 2,), daemon=True
        )
        thread.start()
        profiler = SamplingProfiler(interval_sec=0.001)
        profiler.start()
        try:
            deadline = time.monotonic() + 5.0
            while profiler.sample_count() < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            profiler.stop()
            stop.set()
            thread.join()
        for stack, _count in profiler.iter_stacks():
            assert len(stack) <= MAX_STACK_DEPTH

    def test_context_manager_profiles_scoped_work(self) -> None:
        stop = threading.Event()
        busy = _busy_thread(stop)
        try:
            with SamplingProfiler(interval_sec=0.001) as profiler:
                assert profiler.running is True
                time.sleep(0.05)
            assert profiler.running is False
        finally:
            stop.set()
            busy.join()
