"""Tests for structured logging and its trace correlation."""

import io
import json

import pytest

from repro.obs.logging import (
    LogManager,
    StructuredLogger,
    configure_logging,
    console_handler,
    format_console,
    format_json,
    get_logger,
    json_handler,
    jsonl_file_handler,
)
from repro.obs.trace import Tracer


@pytest.fixture()
def captured():
    records = []
    manager = LogManager(level="debug", handlers=[records.append])
    return records, manager


class TestRecords:
    def test_record_shape(self, captured) -> None:
        records, manager = captured
        get_logger("nnexus.test", manager).info("thing_happened", count=3, kind="x")
        assert len(records) == 1
        record = records[0]
        assert record["level"] == "info"
        assert record["logger"] == "nnexus.test"
        assert record["event"] == "thing_happened"
        assert record["attrs"] == {"count": 3, "kind": "x"}
        assert record["trace_id"] == "" and record["span_id"] == ""
        assert isinstance(record["ts"], float)

    def test_level_filtering(self, captured) -> None:
        records, manager = captured
        manager.set_level("warning")
        logger = get_logger("t", manager)
        logger.debug("dropped")
        logger.info("dropped")
        logger.warning("kept")
        logger.error("kept")
        assert [record["event"] for record in records] == ["kept", "kept"]
        assert logger.enabled_for("error")
        assert not logger.enabled_for("info")

    def test_unknown_level_rejected(self) -> None:
        with pytest.raises(ValueError):
            LogManager(level="loud")


class TestTraceCorrelation:
    def test_log_inside_span_carries_ids(self, captured) -> None:
        records, manager = captured
        tracer = Tracer(seed=21)
        logger = get_logger("t", manager)
        with tracer.span("request") as span:
            logger.info("inside")
        logger.info("outside")
        inside, outside = records
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id
        assert outside["trace_id"] == "" and outside["span_id"] == ""

    def test_log_becomes_span_event(self, captured) -> None:
        records, manager = captured
        tracer = Tracer(seed=22)
        logger = get_logger("t", manager)
        with tracer.span("request") as span:
            logger.warning("cache_miss", key=5)
        record = tracer.get_trace(span.trace_id)["spans"][0]
        assert record["events"][0]["name"] == "cache_miss"
        assert record["events"][0]["attrs"]["level"] == "warning"

    def test_nested_span_wins(self, captured) -> None:
        records, manager = captured
        tracer = Tracer(seed=23)
        logger = get_logger("t", manager)
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                logger.info("deep")
        assert records[0]["span_id"] == inner.span_id


class TestFormattersAndHandlers:
    def _record(self, **overrides):
        record = {
            "ts": 1700000000.25,
            "level": "info",
            "logger": "nnexus.server",
            "trace_id": "",
            "span_id": "",
            "event": "server.listening",
            "attrs": {"port": 7070, "host": "127.0.0.1"},
        }
        record.update(overrides)
        return record

    def test_format_json_is_parseable(self) -> None:
        line = format_json(self._record())
        parsed = json.loads(line)
        assert parsed["event"] == "server.listening"
        assert parsed["attrs"]["port"] == 7070

    def test_format_console_contains_event_and_sorted_attrs(self) -> None:
        line = format_console(self._record())
        assert "server.listening" in line
        assert "INFO" in line
        assert line.index("host=127.0.0.1") < line.index("port=7070")
        assert "[trace" not in line

    def test_format_console_appends_trace_id(self) -> None:
        line = format_console(self._record(trace_id="ab" * 16))
        assert f"[trace {'ab' * 16}]" in line

    def test_console_and_json_handlers_write_stream(self) -> None:
        console_stream, json_stream = io.StringIO(), io.StringIO()
        console_handler(console_stream)(self._record())
        json_handler(json_stream)(self._record())
        assert "server.listening" in console_stream.getvalue()
        assert json.loads(json_stream.getvalue())["logger"] == "nnexus.server"

    def test_jsonl_file_handler(self, tmp_path) -> None:
        path = tmp_path / "log.jsonl"
        handler = jsonl_file_handler(path)
        handler(self._record())
        handler(self._record(event="second"))
        handler.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["event"] for line in lines] == ["server.listening", "second"]

    def test_configure_logging_private_manager(self, tmp_path) -> None:
        stream = io.StringIO()
        manager = LogManager(level="info", handlers=[])
        configure_logging(
            level="debug",
            fmt="json",
            stream=stream,
            jsonl_path=tmp_path / "out.jsonl",
            manager=manager,
        )
        get_logger("t", manager).debug("visible")
        assert json.loads(stream.getvalue())["event"] == "visible"
        assert (tmp_path / "out.jsonl").read_text().strip()
        for handler in manager._handlers:
            getattr(handler, "close", lambda: None)()

    def test_configure_logging_rejects_unknown_format(self) -> None:
        with pytest.raises(ValueError):
            configure_logging(fmt="xml", manager=LogManager(handlers=[]))

    def test_logger_front_end_is_light(self) -> None:
        manager = LogManager(handlers=[])
        logger = StructuredLogger("a.b", manager)
        assert logger.name == "a.b"
        assert manager.level == "info"
