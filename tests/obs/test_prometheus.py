"""Tests for the Prometheus text exposition renderer."""

import re
import threading

from repro.obs.metrics import MetricsRegistry, empty_snapshot, merge_series
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


def _parse_sample_names(text: str) -> list[tuple[str, list[str]]]:
    """(metric name, label names) per sample line, asserting line shape."""
    samples = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        body = line.rsplit(" ", 1)[0]
        if "{" in body:
            name, _, labels = body.partition("{")
            label_names = re.findall(r'([a-zA-Z0-9_]+)="', labels)
        else:
            name, label_names = body, []
        samples.append((name, label_names))
    return samples


def test_content_type_is_exposition_format_0_0_4() -> None:
    assert CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in CONTENT_TYPE


def test_empty_snapshot_renders_empty_text() -> None:
    assert render_prometheus(empty_snapshot()) == ""


def test_counter_and_gauge_lines() -> None:
    registry = MetricsRegistry()
    registry.inc("nnexus_requests_total", value=3, method="ping")
    registry.inc("nnexus_requests_total", value=1, method="linkEntry")
    registry.set_gauge("nnexus_objects", 12)
    text = render_prometheus(registry.snapshot())
    lines = text.splitlines()
    assert "# TYPE nnexus_requests_total counter" in lines
    assert 'nnexus_requests_total{method="linkEntry"} 1' in lines
    assert 'nnexus_requests_total{method="ping"} 3' in lines
    assert "# TYPE nnexus_objects gauge" in lines
    assert "nnexus_objects 12" in lines
    # One TYPE line per metric name, not per series.
    assert sum(line.startswith("# TYPE nnexus_requests_total") for line in lines) == 1


def test_histogram_renders_as_summary() -> None:
    registry = MetricsRegistry()
    for value in (0.1, 0.2, 0.3, 0.4):
        registry.observe("nnexus_pipeline_stage_seconds", value, stage="match")
    text = render_prometheus(registry.snapshot())
    lines = text.splitlines()
    assert "# TYPE nnexus_pipeline_stage_seconds summary" in lines
    assert 'nnexus_pipeline_stage_seconds{stage="match",quantile="0.5"} 0.2' in lines
    assert 'nnexus_pipeline_stage_seconds{stage="match",quantile="0.95"} 0.4' in lines
    assert 'nnexus_pipeline_stage_seconds{stage="match",quantile="0.99"} 0.4' in lines
    assert 'nnexus_pipeline_stage_seconds_sum{stage="match"} 1' in lines
    assert 'nnexus_pipeline_stage_seconds_count{stage="match"} 4' in lines


def test_label_values_are_escaped() -> None:
    snapshot = merge_series(
        empty_snapshot(),
        counters=[("weird_total", {"path": 'a\\b"c\nd'}, 1)],
    )
    text = render_prometheus(snapshot)
    assert 'weird_total{path="a\\\\b\\"c\\nd"} 1' in text
    # The rendered text itself must stay one sample per physical line.
    assert len(text.splitlines()) == 2


def test_output_is_deterministic_and_newline_terminated() -> None:
    registry = MetricsRegistry()
    registry.inc("b_total")
    registry.inc("a_total")
    registry.observe("h_seconds", 0.5, stage="render")
    first = render_prometheus(registry.snapshot())
    second = render_prometheus(registry.snapshot())
    assert first == second
    assert first.endswith("\n")
    # Counters sorted by metric name before the summary block.
    assert first.index("a_total") < first.index("b_total") < first.index("h_seconds")


def test_integer_valued_floats_render_unadorned() -> None:
    snapshot = merge_series(empty_snapshot(), counters=[("n_total", {}, 7.0)])
    assert "n_total 7\n" in render_prometheus(snapshot)


def test_full_stack_emits_only_valid_metric_and_label_names() -> None:
    """Every name the linker stack exports must satisfy the Prometheus
    grammar — an invalid name silently poisons a whole scrape."""
    from repro.core.linker import NNexus
    from repro.corpus.planetmath_sample import sample_corpus
    from repro.ontology.msc import build_small_msc

    linker = NNexus(scheme=build_small_msc(), metrics=MetricsRegistry())
    linker.add_objects(sample_corpus())
    for obj_id in list(linker.object_ids())[:5]:
        linker.render_object(obj_id)
    text = render_prometheus(linker.metrics_snapshot())
    samples = _parse_sample_names(text)
    assert samples, "instrumented linker produced no samples"
    names = {name for name, _ in samples}
    assert "nnexus_memory_bytes" in names
    assert "nnexus_build_info" in names
    assert "nnexus_uptime_seconds" in names
    for name, label_names in samples:
        assert _METRIC_NAME.fullmatch(name), name
        for label in label_names:
            assert _LABEL_NAME.fullmatch(label), (name, label)


def test_ordering_is_deterministic_under_concurrent_updates() -> None:
    """Renders taken while writers hammer the registry stay one sample
    per line and sorted; identical snapshots render identical text."""
    registry = MetricsRegistry()
    stop = threading.Event()

    def hammer(worker: int) -> None:
        n = 0
        while not stop.is_set():
            registry.inc("hammer_total", worker=str(worker))
            registry.set_gauge("hammer_gauge", n, worker=str(worker))
            registry.observe("hammer_seconds", 0.001 * (n % 7), worker=str(worker))
            n += 1

    threads = [
        threading.Thread(target=hammer, args=(worker,)) for worker in range(4)
    ]
    for thread in threads:
        thread.start()
    try:
        for _ in range(20):
            text = render_prometheus(registry.snapshot())
            samples = _parse_sample_names(text)
            for name, _ in samples:
                assert _METRIC_NAME.fullmatch(name), name
            # Sample lines are grouped by metric and sorted within it.
            counter_lines = [
                line for line in text.splitlines()
                if line.startswith("hammer_total{")
            ]
            assert counter_lines == sorted(counter_lines)
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    frozen = registry.snapshot()
    assert render_prometheus(frozen) == render_prometheus(frozen)
