"""Tests for the Prometheus text exposition renderer."""

from repro.obs.metrics import MetricsRegistry, empty_snapshot, merge_series
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus


def test_content_type_is_exposition_format_0_0_4() -> None:
    assert CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in CONTENT_TYPE


def test_empty_snapshot_renders_empty_text() -> None:
    assert render_prometheus(empty_snapshot()) == ""


def test_counter_and_gauge_lines() -> None:
    registry = MetricsRegistry()
    registry.inc("nnexus_requests_total", value=3, method="ping")
    registry.inc("nnexus_requests_total", value=1, method="linkEntry")
    registry.set_gauge("nnexus_objects", 12)
    text = render_prometheus(registry.snapshot())
    lines = text.splitlines()
    assert "# TYPE nnexus_requests_total counter" in lines
    assert 'nnexus_requests_total{method="linkEntry"} 1' in lines
    assert 'nnexus_requests_total{method="ping"} 3' in lines
    assert "# TYPE nnexus_objects gauge" in lines
    assert "nnexus_objects 12" in lines
    # One TYPE line per metric name, not per series.
    assert sum(line.startswith("# TYPE nnexus_requests_total") for line in lines) == 1


def test_histogram_renders_as_summary() -> None:
    registry = MetricsRegistry()
    for value in (0.1, 0.2, 0.3, 0.4):
        registry.observe("nnexus_pipeline_stage_seconds", value, stage="match")
    text = render_prometheus(registry.snapshot())
    lines = text.splitlines()
    assert "# TYPE nnexus_pipeline_stage_seconds summary" in lines
    assert 'nnexus_pipeline_stage_seconds{stage="match",quantile="0.5"} 0.2' in lines
    assert 'nnexus_pipeline_stage_seconds{stage="match",quantile="0.95"} 0.4' in lines
    assert 'nnexus_pipeline_stage_seconds{stage="match",quantile="0.99"} 0.4' in lines
    assert 'nnexus_pipeline_stage_seconds_sum{stage="match"} 1' in lines
    assert 'nnexus_pipeline_stage_seconds_count{stage="match"} 4' in lines


def test_label_values_are_escaped() -> None:
    snapshot = merge_series(
        empty_snapshot(),
        counters=[("weird_total", {"path": 'a\\b"c\nd'}, 1)],
    )
    text = render_prometheus(snapshot)
    assert 'weird_total{path="a\\\\b\\"c\\nd"} 1' in text
    # The rendered text itself must stay one sample per physical line.
    assert len(text.splitlines()) == 2


def test_output_is_deterministic_and_newline_terminated() -> None:
    registry = MetricsRegistry()
    registry.inc("b_total")
    registry.inc("a_total")
    registry.observe("h_seconds", 0.5, stage="render")
    first = render_prometheus(registry.snapshot())
    second = render_prometheus(registry.snapshot())
    assert first == second
    assert first.endswith("\n")
    # Counters sorted by metric name before the summary block.
    assert first.index("a_total") < first.index("b_total") < first.index("h_seconds")


def test_integer_valued_floats_render_unadorned() -> None:
    snapshot = merge_series(empty_snapshot(), counters=[("n_total", {}, 7.0)])
    assert "n_total 7\n" in render_prometheus(snapshot)
