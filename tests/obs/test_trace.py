"""Tests for the tracer core: spans, ids, bounds, export, forensics."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.logging import LogManager, get_logger
from repro.obs.trace import (
    MAX_SPAN_EVENTS,
    MAX_SPANS_PER_TRACE,
    NULL_SPAN,
    NULL_TRACER,
    JsonlExporter,
    Tracer,
    current_span,
    format_traceparent,
    parse_traceparent,
    read_jsonl,
)


class TestTraceparent:
    def test_round_trip(self) -> None:
        header = format_traceparent("ab" * 16, "cd" * 8)
        assert header == "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8)

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-cdcdcdcdcdcdcdcd-01",
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span id
            "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # forbidden version
            "zz-" + "ab" * 16 + "-" + "cd" * 8 + "-01",
            "00-" + "gg" * 16 + "-" + "cd" * 8 + "-01",  # non-hex
        ],
    )
    def test_malformed_is_treated_as_absent(self, header) -> None:
        assert parse_traceparent(header) is None

    def test_uppercase_and_whitespace_tolerated(self) -> None:
        header = "  00-" + "AB" * 16 + "-" + "CD" * 8 + "-01  "
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8)


class TestSpans:
    def test_seeded_ids_are_deterministic(self) -> None:
        ids_a = [Tracer(seed=7).span("x").trace_id for _ in range(3)]
        ids_b = [Tracer(seed=7).span("x").trace_id for _ in range(3)]
        assert ids_a == ids_b
        assert all(len(trace_id) == 32 for trace_id in ids_a)

    def test_span_tree_parenting_via_context(self) -> None:
        tracer = Tracer(seed=1)
        with tracer.span("root") as root:
            assert current_span() is root
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                with tracer.span("grandchild") as grandchild:
                    assert grandchild.parent_id == child.span_id
        assert current_span() is None
        trace = tracer.get_trace(root.trace_id)
        assert trace["complete"]
        assert [span["name"] for span in trace["spans"]] == [
            "grandchild",
            "child",
            "root",
        ]

    def test_explicit_parent_overrides_context(self) -> None:
        tracer = Tracer(seed=2)
        root = tracer.span("root")
        # Not entered as a context manager: simulate a worker thread
        # that received the parent explicitly.
        child = tracer.span("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        child.finish()
        root.finish()

    def test_exception_sets_error_status(self) -> None:
        tracer = Tracer(seed=3)
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("bad input")
        assert span.status == "error"
        assert "bad input" in span.status_detail
        record = tracer.get_trace(span.trace_id)["spans"][0]
        assert record["status"] == "error"

    def test_attributes_and_events(self) -> None:
        tracer = Tracer(seed=4)
        with tracer.span("op", phase="init") as span:
            span.set_attribute("items", 3)
            span.add_event("milestone", step=1)
        record = tracer.get_trace(span.trace_id)["spans"][0]
        assert record["attributes"] == {"phase": "init", "items": 3}
        assert record["events"][0]["name"] == "milestone"
        assert record["events"][0]["attrs"] == {"step": 1}
        assert record["events"][0]["offset_s"] >= 0.0

    def test_event_bound(self) -> None:
        tracer = Tracer(seed=5)
        with tracer.span("chatty") as span:
            for index in range(MAX_SPAN_EVENTS + 10):
                span.add_event(f"event-{index}")
        record = tracer.get_trace(span.trace_id)["spans"][0]
        assert len(record["events"]) == MAX_SPAN_EVENTS
        assert record["dropped_events"] == 10

    def test_record_span_backdates_duration(self) -> None:
        tracer = Tracer(seed=6)
        span = tracer.record_span("stage.steer", 1.5, matches=4)
        record = tracer.get_trace(span.trace_id)["spans"][0]
        assert record["duration"] == pytest.approx(1.5, abs=0.05)
        assert record["attributes"] == {"matches": 4}

    def test_finish_is_idempotent(self) -> None:
        tracer = Tracer(seed=7)
        span = tracer.span("once")
        span.finish()
        duration = span.duration
        span.finish()
        assert span.duration == duration
        assert len(tracer.get_trace(span.trace_id)["spans"]) == 1


class TestRingBounds:
    def test_trace_ring_evicts_oldest(self) -> None:
        tracer = Tracer(seed=8, max_traces=3)
        roots = [tracer.span(f"req-{index}") for index in range(5)]
        for root in roots:
            root.finish()
        assert tracer.trace_count() == 3
        assert tracer.get_trace(roots[0].trace_id) is None
        assert tracer.get_trace(roots[4].trace_id) is not None
        recent = tracer.recent_traces()
        assert [trace["trace_id"] for trace in recent] == [
            roots[4].trace_id,
            roots[3].trace_id,
            roots[2].trace_id,
        ]

    def test_spans_per_trace_bound(self) -> None:
        tracer = Tracer(seed=9)
        with tracer.span("root") as root:
            for index in range(MAX_SPANS_PER_TRACE + 5):
                tracer.record_span(f"child-{index}", 0.0)
        trace = tracer.get_trace(root.trace_id)
        assert len(trace["spans"]) == MAX_SPANS_PER_TRACE
        # The root itself overflowed too: +1 for it.
        assert trace["dropped_spans"] == 6

    def test_recent_traces_limit(self) -> None:
        tracer = Tracer(seed=10)
        for index in range(5):
            tracer.span(f"r{index}").finish()
        assert len(tracer.recent_traces(limit=2)) == 2
        assert tracer.recent_traces(limit=0) == []


class TestSlowRequests:
    def test_slow_root_flushes_metrics_and_log(self) -> None:
        captured = []
        manager = LogManager(level="debug", handlers=[captured.append])
        metrics = MetricsRegistry()
        tracer = Tracer(seed=11, slow_threshold=0.5, metrics=metrics)
        tracer._logger = get_logger("nnexus.trace", manager)
        with tracer.span("server.linkEntry"):
            tracer.record_span("stage.match", 0.4)
            tracer.record_span("stage.steer", 0.9)
            current_span()._start -= 1.0  # backdate: the request "took" >=1s
        assert metrics.counter_value("nnexus_slow_requests_total") == 1.0
        assert metrics.gauge_value(
            "nnexus_pipeline_stage_max_seconds", stage="steer"
        ) == pytest.approx(0.9, abs=0.05)
        assert metrics.gauge_value(
            "nnexus_pipeline_stage_max_seconds", stage="match"
        ) == pytest.approx(0.4, abs=0.05)
        slow = [record for record in captured if record["event"] == "slow_request"]
        assert len(slow) == 1
        assert slow[0]["level"] == "warning"
        names = {span["name"] for span in slow[0]["attrs"]["spans"]}
        assert {"server.linkEntry", "stage.match", "stage.steer"} <= names

    def test_fast_root_does_not_flush(self) -> None:
        captured = []
        manager = LogManager(level="debug", handlers=[captured.append])
        metrics = MetricsRegistry()
        tracer = Tracer(seed=12, slow_threshold=10.0, metrics=metrics)
        tracer._logger = get_logger("nnexus.trace", manager)
        with tracer.span("fast"):
            pass
        assert metrics.counter_value("nnexus_slow_requests_total") == 0.0
        assert not captured

    def test_stage_max_gauge_keeps_maximum(self) -> None:
        metrics = MetricsRegistry()
        tracer = Tracer(seed=13, slow_threshold=0.0, metrics=metrics)
        tracer._logger = get_logger("nnexus.trace", LogManager(handlers=[]))
        for duration in (0.8, 0.3):
            with tracer.span("req"):
                tracer.record_span("stage.render", duration)
        assert metrics.gauge_value(
            "nnexus_pipeline_stage_max_seconds", stage="render"
        ) == pytest.approx(0.8, abs=0.05)


class TestExportAndNull:
    def test_jsonl_exporter_round_trip(self, tmp_path) -> None:
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(seed=14)
        with JsonlExporter(path) as exporter:
            tracer.add_sink(exporter)
            with tracer.span("a"):
                tracer.record_span("b", 0.01)
        spans = list(read_jsonl(path))
        assert [span["name"] for span in spans] == ["b", "a"]
        assert json.loads(path.read_text().splitlines()[0])["name"] == "b"

    def test_null_tracer_is_inert(self) -> None:
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.span("anything")
        assert span is NULL_SPAN
        with span as entered:
            assert entered is NULL_SPAN
            assert current_span() is None
        span.set_attribute("k", "v")
        span.add_event("e")
        span.finish()
        assert NULL_TRACER.start_trace("x", traceparent="00-...") is NULL_SPAN
        assert NULL_TRACER.get_trace("abc") is None
        assert NULL_TRACER.recent_traces() == []
        assert NULL_TRACER.active_trace_id() == ""

    def test_ids_never_zero_and_well_formed(self) -> None:
        tracer = Tracer(seed=15)
        for _ in range(50):
            span = tracer.span("x")
            assert len(span.trace_id) == 32 and set(span.trace_id) != {"0"}
            assert len(span.span_id) == 16 and set(span.span_id) != {"0"}
            int(span.trace_id, 16)
            int(span.span_id, 16)
            span.finish()

    def test_max_traces_validation(self) -> None:
        with pytest.raises(ValueError):
            Tracer(max_traces=0)
