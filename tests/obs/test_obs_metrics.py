"""Tests for the metrics core: counters, gauges, histogram percentiles."""

import threading

import pytest

from repro.obs.metrics import (
    NULL_RECORDER,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    empty_snapshot,
    merge_series,
)


class TestHistogramPercentiles:
    def test_nearest_rank_on_1_to_100(self) -> None:
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(95) == 95
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        assert histogram.percentile(0) == 1

    def test_single_sample_is_every_percentile(self) -> None:
        histogram = Histogram()
        histogram.observe(7.5)
        summary = histogram.summary()
        assert summary.p50 == summary.p95 == summary.p99 == 7.5
        assert summary.count == 1
        assert summary.min == summary.max == 7.5

    def test_empty_summary_is_zeroes(self) -> None:
        summary = Histogram().summary()
        assert summary.count == 0
        assert summary.sum == 0.0
        assert summary.p50 == summary.p95 == summary.p99 == 0.0

    def test_unordered_observations(self) -> None:
        histogram = Histogram()
        for value in (9, 1, 5, 3, 7):
            histogram.observe(value)
        assert histogram.percentile(50) == 5
        assert histogram.summary().min == 1
        assert histogram.summary().max == 9

    def test_window_bounds_samples_but_not_totals(self) -> None:
        histogram = Histogram(window=10)
        for value in range(100):
            histogram.observe(value)
        assert len(histogram) == 10
        assert histogram.count == 100
        assert histogram.sum == sum(range(100))
        # Percentiles cover only the most recent window (90..99).
        assert histogram.percentile(50) == 94

    def test_percentile_out_of_range_rejected(self) -> None:
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_bad_window_rejected(self) -> None:
        with pytest.raises(ValueError):
            Histogram(window=0)


class TestNullRecorder:
    def test_disabled_and_inert(self) -> None:
        recorder = NullRecorder()
        assert recorder.enabled is False
        recorder.inc("x")
        recorder.set_gauge("y", 1.0)
        recorder.observe("z", 0.5)
        assert recorder.snapshot() == empty_snapshot()

    def test_shared_instance(self) -> None:
        assert NULL_RECORDER.enabled is False


class TestRegistry:
    def test_counter_accumulates_per_label_set(self) -> None:
        registry = MetricsRegistry()
        registry.inc("requests", method="ping")
        registry.inc("requests", method="ping")
        registry.inc("requests", method="linkEntry", value=3)
        assert registry.counter_value("requests", method="ping") == 2
        assert registry.counter_value("requests", method="linkEntry") == 3
        assert registry.counter_value("requests", method="absent") == 0

    def test_gauge_overwrites(self) -> None:
        registry = MetricsRegistry()
        registry.set_gauge("objects", 5)
        registry.set_gauge("objects", 9)
        assert registry.gauge_value("objects") == 9

    def test_histogram_summary_by_label(self) -> None:
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            registry.observe("latency", value, stage="match")
        summary = registry.histogram_summary("latency", stage="match")
        assert summary.count == 3
        assert summary.p50 == 0.2
        assert registry.histogram_summary("latency", stage="absent").count == 0

    def test_snapshot_shape_and_determinism(self) -> None:
        registry = MetricsRegistry()
        registry.inc("b_total", method="z")
        registry.inc("a_total")
        registry.set_gauge("g", 1.5)
        registry.observe("h_seconds", 0.25, stage="match")
        first = registry.snapshot()
        second = registry.snapshot()
        assert first == second
        assert [c["name"] for c in first["counters"]] == ["a_total", "b_total"]
        histogram = first["histograms"][0]
        assert histogram["labels"] == {"stage": "match"}
        assert histogram["count"] == 1
        assert histogram["p99"] == 0.25

    def test_snapshot_is_json_serializable(self) -> None:
        import json

        registry = MetricsRegistry()
        registry.observe("h", 0.5, stage="steer")
        assert json.loads(json.dumps(registry.snapshot()))["histograms"][0]["sum"] == 0.5

    def test_reset_drops_series(self) -> None:
        registry = MetricsRegistry()
        registry.inc("x")
        registry.reset()
        assert registry.snapshot() == empty_snapshot()

    def test_concurrent_increments_do_not_lose_updates(self) -> None:
        registry = MetricsRegistry()

        def work() -> None:
            for _ in range(1000):
                registry.inc("hits")
                registry.observe("lat", 0.001, stage="match")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("hits") == 8000
        assert registry.histogram_summary("lat", stage="match").count == 8000


class TestMergeSeries:
    def test_appends_external_counters_and_gauges(self) -> None:
        snapshot = merge_series(
            empty_snapshot(),
            counters=[("cache_hits_total", {}, 5)],
            gauges=[("objects", {"corpus": "pm"}, 42)],
        )
        assert snapshot["counters"] == [
            {"name": "cache_hits_total", "labels": {}, "value": 5.0}
        ]
        assert snapshot["gauges"][0]["labels"] == {"corpus": "pm"}
