"""Tests for the link-graph analysis module."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.graph import (
    LinkGraph,
    build_link_graph,
    connectivity_report,
)


def chain_graph() -> LinkGraph:
    graph = LinkGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 4)
    return graph


class TestBasics:
    def test_degrees(self) -> None:
        graph = LinkGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 2)  # multigraph: repeated invocation
        graph.add_edge(3, 2)
        assert graph.out_degree(1) == 2
        assert graph.in_degree(2) == 3
        assert graph.edge_count() == 3

    def test_successors_predecessors(self) -> None:
        graph = chain_graph()
        assert graph.successors(2) == [3]
        assert graph.predecessors(2) == [1]

    def test_isolated_nodes_counted(self) -> None:
        graph = build_link_graph({1: [2]}, all_nodes=[1, 2, 3])
        assert len(graph) == 3
        assert 3 in graph
        assert graph.out_degree(3) == 0


class TestConnectivity:
    def test_single_component(self) -> None:
        graph = chain_graph()
        components = graph.weakly_connected_components()
        assert len(components) == 1
        assert components[0] == {1, 2, 3, 4}
        assert graph.largest_component_fraction() == 1.0

    def test_two_components_sorted_by_size(self) -> None:
        graph = chain_graph()
        graph.add_edge(10, 11)
        components = graph.weakly_connected_components()
        assert [len(c) for c in components] == [4, 2]

    def test_orphans_and_sinks(self) -> None:
        graph = chain_graph()
        assert graph.orphans() == [1]
        assert graph.sinks() == [4]

    def test_reachability(self) -> None:
        graph = chain_graph()
        assert graph.reachable_from(1) == {1, 2, 3, 4}
        assert graph.reachable_from(3) == {3, 4}
        assert graph.reachable_from(99) == set()

    def test_mean_reachability_bounds(self) -> None:
        graph = chain_graph()
        value = graph.mean_reachability()
        assert 0.0 < value <= 1.0

    def test_empty_graph(self) -> None:
        graph = LinkGraph()
        assert graph.largest_component_fraction() == 0.0
        assert graph.mean_reachability() == 0.0
        assert graph.pagerank() == {}


class TestPageRank:
    def test_sums_to_one(self) -> None:
        graph = chain_graph()
        graph.add_edge(4, 1)
        rank = graph.pagerank()
        assert sum(rank.values()) == pytest.approx(1.0, abs=1e-6)

    def test_hub_ranks_highest(self) -> None:
        graph = LinkGraph()
        for source in (1, 2, 3, 4, 5):
            graph.add_edge(source, 99)
        graph.add_edge(99, 1)
        rank = graph.pagerank()
        assert max(rank, key=rank.get) == 99

    def test_dangling_nodes_handled(self) -> None:
        graph = LinkGraph()
        graph.add_edge(1, 2)  # 2 is a sink (dangling)
        rank = graph.pagerank()
        assert sum(rank.values()) == pytest.approx(1.0, abs=1e-6)
        assert rank[2] > rank[1]

    def test_top_by_in_degree(self) -> None:
        graph = LinkGraph()
        for source in (1, 2, 3):
            graph.add_edge(source, 50)
        graph.add_edge(1, 60)
        top = graph.top_by_in_degree(2)
        assert top[0] == (50, 3)


class TestConnectivityReport:
    def test_report_fields(self) -> None:
        graph = chain_graph()
        report = connectivity_report(graph)
        assert report.nodes == 4
        assert report.edges == 3
        assert report.largest_component_fraction == 1.0
        assert report.orphan_count == 1
        assert report.sink_count == 1
        assert report.mean_out_degree == pytest.approx(0.75)
        assert report.top_hubs[0][0] in {2, 3, 4}
        assert set(report.summary()) >= {"nodes", "edges", "orphans"}


class TestDotExport:
    def test_dot_structure(self) -> None:
        from repro.analysis.graph import to_dot

        graph = chain_graph()
        dot = to_dot(graph, labels={1: "plane graph", 2: 'say "graph"'})
        assert dot.startswith("digraph nnexus {")
        assert 'n1 [label="plane graph"];' in dot
        assert "say 'graph'" in dot  # quotes sanitized
        assert "n1 -> n2;" in dot
        assert dot.rstrip().endswith("}")

    def test_max_nodes_elides(self) -> None:
        from repro.analysis.graph import to_dot

        graph = LinkGraph()
        for i in range(50):
            graph.add_edge(0, i + 1)
        dot = to_dot(graph, max_nodes=10)
        assert dot.count("[label=") == 10
        # Hub node 0 survives the degree ranking.
        assert 'n0 [label="0"];' in dot

    def test_edge_weights_thicken(self) -> None:
        from repro.analysis.graph import to_dot

        graph = LinkGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 2)
        assert "penwidth=2" in to_dot(graph)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
    )
)
def test_component_partition_property(edges: list[tuple[int, int]]) -> None:
    """Components partition the node set."""
    graph = LinkGraph()
    for source, target in edges:
        graph.add_edge(source, target)
    components = graph.weakly_connected_components()
    union: set[int] = set()
    for component in components:
        assert not (union & component)  # disjoint
        union |= component
    assert union == graph.nodes()


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=1, max_size=30
    )
)
def test_pagerank_is_distribution(edges: list[tuple[int, int]]) -> None:
    graph = LinkGraph()
    for source, target in edges:
        graph.add_edge(source, target)
    rank = graph.pagerank()
    assert sum(rank.values()) == pytest.approx(1.0, abs=1e-6)
    assert all(value > 0 for value in rank.values())


class TestConnectivityStudy:
    def test_automatic_more_connected_than_semiauto(self) -> None:
        from repro.corpus.generator import GeneratorParams, generate_corpus
        from repro.eval.experiments import run_connectivity_study

        corpus = generate_corpus(GeneratorParams(n_entries=250, seed=44))
        result = run_connectivity_study(corpus, efforts=(0.5,))
        by_name = {name.split(" (")[0]: report for name, report in result.rows}
        automatic = by_name["NNexus"]
        semiauto = by_name["semiautomatic"]
        assert automatic.edges > semiauto.edges
        assert automatic.orphan_count <= semiauto.orphan_count
        assert automatic.mean_reachability >= semiauto.mean_reachability
        assert "Connectivity study" in result.format()
