"""Tests for corpus statistics (Zipf fits, falloff, Gini)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    _gini_reference,
    expected_index_blowup,
    fit_zipf,
    gini_coefficient,
    phrase_length_falloff,
    profile_corpus,
    term_frequencies,
)
from repro.core.models import CorpusObject


class TestZipfFit:
    def test_perfect_zipf_recovered(self) -> None:
        counts = [int(1000 / rank) for rank in range(1, 200)]
        fit = fit_zipf(counts)
        assert fit.exponent == pytest.approx(1.0, abs=0.1)
        assert fit.r_squared > 0.95
        assert fit.is_zipf_like

    def test_uniform_distribution_not_zipf(self) -> None:
        fit = fit_zipf([10] * 100)
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)
        assert not fit.is_zipf_like

    def test_steeper_law_higher_exponent(self) -> None:
        shallow = fit_zipf([int(1000 / rank**0.8) + 1 for rank in range(1, 100)])
        steep = fit_zipf([int(1000 / rank**1.5) + 1 for rank in range(1, 100)])
        assert steep.exponent > shallow.exponent

    def test_too_few_points_degenerate(self) -> None:
        fit = fit_zipf([5, 3])
        assert fit.points == 2
        assert fit.exponent == 0.0

    def test_zero_counts_ignored(self) -> None:
        fit = fit_zipf([100, 50, 0, 25, 0, 12, 6, 3])
        assert fit.points == 6


class TestTermFrequencies:
    def test_counts_canonical_tokens(self) -> None:
        counts = term_frequencies(["Graphs and graph", "a graph"])
        assert counts["graph"] == 3
        assert counts["and"] == 1

    def test_math_excluded(self) -> None:
        counts = term_frequencies(["word $hidden$ word"])
        assert counts == {"word": 2}


class TestPhraseLengthFalloff:
    def test_falloff_monotone_on_natural_text(self) -> None:
        rng = random.Random(5)
        vocabulary = [f"w{i}" for i in range(300)]
        weights = [1.0 / (i + 1) for i in range(300)]
        texts = [
            " ".join(rng.choices(vocabulary, weights=weights, k=120))
            for __ in range(30)
        ]
        falloff = phrase_length_falloff(texts, max_length=4)
        # The §2.5 falloff: repeated phrases die out fast as length
        # grows (1-grams are bounded by the vocabulary, so the monotone
        # claim starts at length 2).
        assert falloff[2] > falloff[3] > falloff[4]
        assert falloff[4] < falloff[1]

    def test_repeated_phrase_counted(self) -> None:
        falloff = phrase_length_falloff(["alpha beta gamma alpha beta"], max_length=3)
        assert falloff[2] == 1  # "alpha beta" repeats
        assert falloff[3] == 0


class TestMeanOccurrences:
    def test_decreasing_in_length(self) -> None:
        from repro.analysis.stats import mean_occurrences_by_length

        rng = random.Random(11)
        vocabulary = [f"w{i}" for i in range(80)]
        texts = [" ".join(rng.choices(vocabulary, k=150)) for __ in range(15)]
        means = mean_occurrences_by_length(texts, max_length=4)
        assert means[1] > means[2] > means[3] > means[4]
        assert means[4] >= 1.0

    def test_scale_robust(self) -> None:
        """The decreasing property holds at both small and large scale.

        (The distinct-repeated-count proxy peaks near the length whose
        n-gram space matches the corpus; the mean-occurrence series must
        not.)
        """
        from repro.analysis.stats import mean_occurrences_by_length

        rng = random.Random(12)
        vocabulary = [f"w{i}" for i in range(30)]
        for document_count in (3, 60):
            texts = [" ".join(rng.choices(vocabulary, k=100))
                     for __ in range(document_count)]
            means = mean_occurrences_by_length(texts, max_length=3)
            assert means[1] > means[2] > means[3]

    def test_empty(self) -> None:
        from repro.analysis.stats import mean_occurrences_by_length

        assert mean_occurrences_by_length([], max_length=2) == {1: 0.0, 2: 0.0}


class TestProfileCorpus:
    def build(self) -> list[CorpusObject]:
        rng = random.Random(9)
        vocabulary = [f"term{i}" for i in range(150)]
        weights = [1.0 / (i + 1) for i in range(150)]
        objects = []
        for object_id in range(1, 21):
            text = " ".join(rng.choices(vocabulary, weights=weights, k=80))
            objects.append(
                CorpusObject(object_id, f"concept {object_id}",
                             defines=[f"concept {object_id}"],
                             classes=["05C99"], text=text)
            )
        objects.append(
            CorpusObject(99, "concept 1", defines=["concept 1"],
                         classes=["03E20"], text="homonym entry")
        )
        return objects

    def test_profile_fields(self) -> None:
        profile = profile_corpus(self.build())
        assert profile.entries == 21
        assert profile.tokens > 1000
        assert profile.vocabulary > 100
        assert profile.zipf.exponent > 0.4
        assert profile.label_length_distribution[2] >= 20
        assert profile.homonym_labels == 1
        assert profile.max_homonym_group == 2
        assert set(profile.summary()) >= {"zipf_exponent", "vocabulary"}

    def test_expected_index_blowup_positive(self) -> None:
        blowup = expected_index_blowup(profile_corpus(self.build()))
        assert blowup >= 1.0

    def test_empty_corpus(self) -> None:
        profile = profile_corpus([])
        assert profile.entries == 0
        assert expected_index_blowup(profile) == 0.0


class TestGini:
    def test_uniform_is_zero(self) -> None:
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self) -> None:
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_empty_and_zero(self) -> None:
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_matches_textbook_definition(self, values: list[int]) -> None:
        assert gini_coefficient(values) == pytest.approx(
            _gini_reference(values), abs=1e-9
        )

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_bounded(self, values: list[int]) -> None:
        assert -1e-9 <= gini_coefficient(values) <= 1.0
