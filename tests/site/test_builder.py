"""Tests for the static-site builder."""

import pytest

from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.site.builder import SiteBuilder


@pytest.fixture(scope="module")
def linker() -> NNexus:
    instance = NNexus(scheme=build_small_msc())
    instance.add_objects(sample_corpus())
    return instance


@pytest.fixture(scope="module")
def built_site(linker, tmp_path_factory):
    directory = tmp_path_factory.mktemp("site")
    report = SiteBuilder(linker, site_title="PlanetTest").build(directory)
    return directory, report


class TestBuild:
    def test_one_page_per_entry_plus_indexes(self, built_site) -> None:
        directory, report = built_site
        assert report.entry_pages == 30
        assert report.index_pages == 3
        assert (directory / "entry-1.html").exists()
        assert (directory / "index.html").exists()
        assert (directory / "classes.html").exists()
        assert (directory / "network.html").exists()

    def test_entry_page_has_internal_links(self, built_site) -> None:
        directory, __ = built_site
        page = (directory / "entry-1.html").read_text()
        assert 'href="entry-2.html"' in page  # planar graph link
        assert "plane graph" in page

    def test_entry_page_escapes_html(self, built_site, linker) -> None:
        directory, __ = built_site
        # Entry 6's title contains parentheses; body text is escaped.
        page = (directory / "entry-6.html").read_text()
        assert "<script" not in page

    def test_sidebar_metadata(self, built_site) -> None:
        directory, __ = built_site
        page = (directory / "entry-7.html").read_text()  # even number
        assert "defines:" in page
        assert "even number" in page
        assert "11A05" in page

    def test_incoming_links_listed(self, built_site) -> None:
        directory, __ = built_site
        # The 'graph' entry is linked from many others.
        page = (directory / "entry-5.html").read_text()
        assert "linked from:" in page
        assert "entry-" in page.split("linked from:")[1]

    def test_index_lists_all_entries(self, built_site) -> None:
        directory, __ = built_site
        index = (directory / "index.html").read_text()
        for object_id in range(1, 31):
            assert f"entry-{object_id}.html" in index

    def test_classes_page_groups_by_code(self, built_site) -> None:
        directory, __ = built_site
        classes = (directory / "classes.html").read_text()
        assert "05C10" in classes
        assert "Graph theory" in classes or "Topological" in classes

    def test_network_page_reports_stats(self, built_site) -> None:
        directory, __ = built_site
        network = (directory / "network.html").read_text()
        assert "invocation links" in network
        assert "Hub concepts" in network
        assert "pagerank" in network

    def test_links_rendered_counted(self, built_site) -> None:
        __, report = built_site
        assert report.links_rendered > 50


class TestMaliciousContent:
    def test_script_in_entry_text_is_escaped(self, tmp_path) -> None:
        from repro.core.models import CorpusObject

        linker = NNexus(scheme=build_small_msc())
        linker.add_object(
            CorpusObject(1, "xss<script>alert(1)</script>",
                         defines=["xss probe"], classes=["05C99"],
                         text="body with <script>alert(2)</script> & tags")
        )
        report = SiteBuilder(linker).build(tmp_path)
        page = (tmp_path / "entry-1.html").read_text()
        assert "<script>alert(" not in page
        assert "&lt;script&gt;" in page
        assert report.entry_pages == 1
