"""Tests for the HTTP/JSON gateway."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.server.http_gateway import serve_http


@pytest.fixture(scope="module")
def gateway():
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())
    instance = serve_http(linker)
    yield instance
    instance.shutdown()
    instance.server_close()


def get(gateway, path: str):
    host, port = gateway.address
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10) as response:
        return response.status, json.loads(response.read())


def post(gateway, path: str, payload: dict):
    host, port = gateway.address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestRoutes:
    def test_health(self, gateway) -> None:
        status, payload = get(gateway, "/health")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_describe(self, gateway) -> None:
        __, payload = get(gateway, "/describe")
        assert payload["objects"] == 30
        assert payload["concepts"] > 30

    def test_link(self, gateway) -> None:
        __, payload = post(
            gateway,
            "/link",
            {"text": "every planar graph is sparse", "classes": ["05C10"],
             "format": "markdown"},
        )
        assert payload["linkcount"] == 1
        assert payload["links"][0]["phrase"] == "planar graph"
        assert payload["links"][0]["target"] == 2
        assert "](" in payload["body"]

    def test_link_respects_steering(self, gateway) -> None:
        __, graph_theory = post(gateway, "/link",
                                {"text": "the graph", "classes": ["05C40"]})
        __, set_theory = post(gateway, "/link",
                              {"text": "the graph", "classes": ["03E20"]})
        assert graph_theory["links"][0]["target"] == 5
        assert set_theory["links"][0]["target"] == 6

    def test_annotations_endpoint(self, gateway) -> None:
        __, payload = post(
            gateway,
            "/annotations",
            {"text": "a tree is bipartite", "classes": ["05C05"],
             "source": "urn:x:blog"},
        )
        assert payload["type"] == "AnnotationCollection"
        assert payload["total"] >= 1
        assert payload["items"][0]["target"]["source"] == "urn:x:blog"

    def test_entry(self, gateway) -> None:
        __, payload = get(gateway, "/entry/2")
        assert payload["title"] == "planar graph"
        assert "html" in payload


class TestReadiness:
    def test_ready_when_serving(self, gateway) -> None:
        status, payload = get(gateway, "/ready")
        assert status == 200
        assert payload == {"status": "ready", "mode": "serving"}

    def test_not_ready_is_503_with_retry_after(self) -> None:
        linker = NNexus(scheme=build_small_msc())
        instance = serve_http(linker)
        try:
            instance.set_ready(False)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(instance, "/ready")
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "1"
            excinfo.value.close()
            # Liveness stays green: the process is up, just not serving.
            status, __ = get(instance, "/health")
            assert status == 200
            instance.set_ready(True)
            status, __ = get(instance, "/ready")
            assert status == 200
        finally:
            instance.shutdown()
            instance.server_close()


class TestOverload:
    def test_saturated_gateway_sheds_with_503(self) -> None:
        import threading

        linker = NNexus(scheme=build_small_msc())
        linker.add_objects(sample_corpus())
        instance = serve_http(linker, max_in_flight=1, retry_after=7)
        try:
            entered = threading.Event()
            release = threading.Event()
            original = instance.linker.link_text

            def slow_link_text(text, source_classes=()):
                entered.set()
                release.wait(10)
                return original(text, source_classes=source_classes)

            instance.linker.link_text = slow_link_text
            result: dict = {}

            def occupant() -> None:
                result["response"] = post(
                    instance, "/link", {"text": "a tree", "classes": ["05C05"]}
                )

            thread = threading.Thread(target=occupant)
            thread.start()
            assert entered.wait(5)
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    get(instance, "/describe")
                assert excinfo.value.code == 503
                assert excinfo.value.headers["Retry-After"] == "7"
                payload = json.loads(excinfo.value.read())
                assert payload["retryable"] is True
                excinfo.value.close()
            finally:
                release.set()
            thread.join(timeout=10)
            status, payload = result["response"]
            assert status == 200
            assert payload["linkcount"] >= 1
        finally:
            instance.shutdown()
            instance.server_close()


class TestErrors:
    def expect_status(self, callable_, expected: int) -> dict:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            callable_()
        assert excinfo.value.code == expected
        return json.loads(excinfo.value.read())

    def test_unknown_route_404(self, gateway) -> None:
        payload = self.expect_status(lambda: get(gateway, "/nope"), 404)
        assert "error" in payload

    def test_unknown_entry_404(self, gateway) -> None:
        self.expect_status(lambda: get(gateway, "/entry/99999"), 404)

    def test_bad_json_400(self, gateway) -> None:
        host, port = gateway.address

        def send_garbage():
            request = urllib.request.Request(
                f"http://{host}:{port}/link",
                data=b"not json",
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            urllib.request.urlopen(request, timeout=10)

        self.expect_status(send_garbage, 400)

    def test_unknown_format_400(self, gateway) -> None:
        self.expect_status(
            lambda: post(gateway, "/link", {"text": "x", "format": "docx"}), 400
        )

    def test_empty_body_400(self, gateway) -> None:
        host, port = gateway.address

        def send_empty():
            request = urllib.request.Request(
                f"http://{host}:{port}/link", data=b"", method="POST"
            )
            urllib.request.urlopen(request, timeout=10)

        self.expect_status(send_empty, 400)
