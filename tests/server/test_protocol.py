"""Tests for the XML wire protocol and framing."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ProtocolError
from repro.core.models import CorpusObject
from repro.server.protocol import (
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    frame,
    read_frame,
)


def sample_object() -> CorpusObject:
    return CorpusObject(
        object_id=7,
        title="even number",
        defines=["even number", "even"],
        synonyms=["even integer"],
        classes=["11A05"],
        text="An even number is divisible by two & more.",
        domain="planetmath",
        linking_policy="forbid even\npermit even 11\n",
    )


class TestRequestRoundTrip:
    def test_link_entry(self) -> None:
        request = Request(
            "linkEntry",
            fields={"text": "a planar graph", "classes": "05C10", "format": "html"},
        )
        decoded = decode_request(encode_request(request))
        assert decoded.method == "linkEntry"
        assert decoded.fields == request.fields
        assert decoded.obj is None

    def test_add_object(self) -> None:
        request = Request("addObject", obj=sample_object())
        decoded = decode_request(encode_request(request))
        assert decoded.obj == sample_object()

    def test_special_characters_survive(self) -> None:
        request = Request("linkEntry", fields={"text": 'x < y & "z" $a_1$'})
        decoded = decode_request(encode_request(request))
        assert decoded.fields["text"] == 'x < y & "z" $a_1$'

    def test_unknown_method_rejected_on_encode(self) -> None:
        with pytest.raises(ProtocolError):
            encode_request(Request("frobnicate"))

    def test_unknown_method_rejected_on_decode(self) -> None:
        with pytest.raises(ProtocolError):
            decode_request('<request method="frobnicate"/>')

    def test_wrong_root_rejected(self) -> None:
        with pytest.raises(ProtocolError):
            decode_request("<other/>")

    def test_bad_xml_rejected(self) -> None:
        with pytest.raises(ProtocolError):
            decode_request("<request")

    def test_object_requires_id(self) -> None:
        with pytest.raises(ProtocolError):
            decode_request('<request method="addObject"><object/></request>')


class TestResponseRoundTrip:
    def test_ok_with_links(self) -> None:
        response = Response(
            status="ok",
            method="linkEntry",
            fields={"body": "<a>x</a>", "linkcount": "1"},
            links=[{"phrase": "graph", "target": "5", "domain": "pm", "url": "u"}],
        )
        decoded = decode_response(encode_response(response))
        assert decoded.ok
        assert decoded.fields["linkcount"] == "1"
        assert decoded.links[0]["target"] == "5"

    def test_error_response(self) -> None:
        response = Response(status="error", method="addObject", error="duplicate")
        decoded = decode_response(encode_response(response))
        assert not decoded.ok
        assert decoded.error == "duplicate"

    def test_error_code_and_retryable_round_trip(self) -> None:
        response = Response(
            status="error",
            method="ping",
            error="at capacity",
            code="overloaded",
            retryable=True,
        )
        decoded = decode_response(encode_response(response))
        assert decoded.code == "overloaded"
        assert decoded.retryable
        assert decoded.error == "at capacity"

    def test_nonretryable_code_round_trip(self) -> None:
        response = Response(
            status="error", method="ping", error="nope", code="bad-request"
        )
        decoded = decode_response(encode_response(response))
        assert decoded.code == "bad-request"
        assert not decoded.retryable

    def test_legacy_response_without_code_decodes(self) -> None:
        """Responses from pre-code servers default to no-code/non-retryable."""
        legacy = '<response status="error" method="ping"><error>x</error></response>'
        decoded = decode_response(legacy)
        assert decoded.code == ""
        assert not decoded.retryable

    def test_default_response_emits_no_new_attributes(self) -> None:
        """Old-shape responses encode byte-identically (wire compatibility)."""
        encoded = encode_response(Response(status="ok", method="ping"))
        assert "code" not in encoded
        assert "retryable" not in encoded


class TestFraming:
    def test_frame_read_frame(self) -> None:
        payload = frame("hello ünïcode")
        stream = io.BytesIO(payload)
        assert read_frame(stream.read) == "hello ünïcode"

    def test_eof_between_messages_is_none(self) -> None:
        stream = io.BytesIO(b"")
        assert read_frame(stream.read) is None

    def test_eof_mid_frame_raises(self) -> None:
        payload = frame("hello")[:-2]
        stream = io.BytesIO(payload)
        with pytest.raises(ProtocolError):
            read_frame(stream.read)

    def test_bad_header_raises(self) -> None:
        stream = io.BytesIO(b"helloworld" + b"x" * 5)
        with pytest.raises(ProtocolError):
            read_frame(stream.read)

    def test_multiple_frames_sequential(self) -> None:
        stream = io.BytesIO(frame("one") + frame("two"))
        assert read_frame(stream.read) == "one"
        assert read_frame(stream.read) == "two"
        assert read_frame(stream.read) is None

    @given(st.text(max_size=500))
    def test_any_text_survives_framing(self, message: str) -> None:
        stream = io.BytesIO(frame(message))
        assert read_frame(stream.read) == message

    @given(st.lists(st.text(max_size=50), max_size=10))
    def test_frame_stream_round_trip(self, messages: list[str]) -> None:
        stream = io.BytesIO(b"".join(frame(m) for m in messages))
        decoded = []
        while True:
            message = read_frame(stream.read)
            if message is None:
                break
            decoded.append(message)
        assert decoded == messages
