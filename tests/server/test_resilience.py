"""Unit tests for the resilience primitives."""

import random
import threading

import pytest

from repro.core.errors import OverloadedError
from repro.server.resilience import (
    AdmissionController,
    Deadline,
    ReadersWriterLock,
    RetryPolicy,
)


class TestReadersWriterLock:
    def test_readers_overlap(self) -> None:
        lock = ReadersWriterLock()
        barrier = threading.Barrier(2, timeout=5)
        errors: list[Exception] = []

        def reader() -> None:
            try:
                with lock.read_lock():
                    barrier.wait()  # only passes if both hold the lock at once
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for __ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not errors

    def test_writer_excludes_readers(self) -> None:
        lock = ReadersWriterLock()
        order: list[str] = []
        writer_in = threading.Event()
        release_writer = threading.Event()

        def writer() -> None:
            with lock.write_lock():
                order.append("writer-in")
                writer_in.set()
                release_writer.wait(5)
                order.append("writer-out")

        def reader() -> None:
            writer_in.wait(5)
            with lock.read_lock():
                order.append("reader-in")

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        writer_in.wait(5)
        assert not lock.acquire_read(timeout=0.1)  # writer holds it exclusively
        release_writer.set()
        w.join(timeout=5)
        r.join(timeout=5)
        assert order == ["writer-in", "writer-out", "reader-in"]

    def test_waiting_writer_blocks_new_readers(self) -> None:
        lock = ReadersWriterLock()
        lock.acquire_read()
        writer_done = threading.Event()

        def writer() -> None:
            lock.acquire_write()
            lock.release_write()
            writer_done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        # Wait until the writer is queued, then a fresh reader must wait
        # behind it (writer preference), not sneak past.
        for __ in range(100):
            if not lock.acquire_read(timeout=0.01):
                break
            lock.release_read()
        assert not lock.acquire_read(timeout=0.05)
        lock.release_read()
        assert writer_done.wait(5)
        thread.join(timeout=5)
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_write_lock_reentrant_release(self) -> None:
        lock = ReadersWriterLock()
        with lock.write_lock():
            pass
        with lock.read_lock():
            assert lock.readers == 1
        assert lock.readers == 0

    def test_timed_out_read_does_not_leak_reader_count(self) -> None:
        lock = ReadersWriterLock()
        assert lock.acquire_write(timeout=1)
        # A reader giving up must not be counted as holding the lock.
        assert not lock.acquire_read(timeout=0.05)
        assert lock.readers == 0
        lock.release_write()
        # If the failed acquire had leaked a phantom reader, this writer
        # would block until the timeout and fail.
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_timed_out_write_does_not_leak_waiting_count(self) -> None:
        lock = ReadersWriterLock()
        assert lock.acquire_read(timeout=1)
        assert not lock.acquire_write(timeout=0.05)
        # Writer preference gates new readers on _writers_waiting == 0:
        # a leaked waiting-writer count would lock readers out forever.
        assert lock.acquire_read(timeout=1)
        lock.release_read()
        lock.release_read()
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_repeated_timeouts_leave_lock_usable(self) -> None:
        lock = ReadersWriterLock()
        assert lock.acquire_write(timeout=1)
        for _ in range(5):
            assert not lock.acquire_read(timeout=0.01)
            assert not lock.acquire_write(timeout=0.01)
        lock.release_write()
        # Counters must be back to rest: readers overlap freely and a
        # writer still gets in afterwards.
        assert lock.acquire_read(timeout=1)
        assert lock.acquire_read(timeout=1)
        assert lock.readers == 2
        lock.release_read()
        lock.release_read()
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_timed_out_writer_wakes_blocked_readers(self) -> None:
        lock = ReadersWriterLock()
        assert lock.acquire_read(timeout=1)
        acquired = threading.Event()

        def reader() -> None:
            if lock.acquire_read(timeout=5):
                acquired.set()
                lock.release_read()

        # This writer stalls behind the held read lock; while it waits,
        # its _writers_waiting bump keeps the background reader out.
        assert not lock.acquire_write(timeout=0.1)
        thread = threading.Thread(target=reader)
        thread.start()
        # Once the writer has given up, the reader must get through.
        assert acquired.wait(5)
        thread.join(timeout=5)
        lock.release_read()


class TestAdmissionController:
    def test_bounds_in_flight(self) -> None:
        controller = AdmissionController(max_in_flight=2)
        assert controller.try_enter()
        assert controller.try_enter()
        assert not controller.try_enter()
        controller.exit()
        assert controller.try_enter()

    def test_admit_raises_when_full(self) -> None:
        controller = AdmissionController(max_in_flight=1)
        with controller.admit():
            with pytest.raises(OverloadedError):
                with controller.admit():
                    pass
        assert controller.in_flight == 0

    def test_wait_idle(self) -> None:
        controller = AdmissionController(max_in_flight=4)
        assert controller.wait_idle(timeout=0.1)
        controller.try_enter()
        assert not controller.wait_idle(timeout=0.05)
        controller.exit()
        assert controller.wait_idle(timeout=1)

    def test_rejects_silly_bound(self) -> None:
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self) -> None:
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        delays = [policy.backoff(attempt) for attempt in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_in_band(self) -> None:
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5)
        rng = random.Random(42)
        for attempt in range(1, 20):
            delay = policy.backoff(attempt, rng=rng)
            assert 0.5 <= delay <= 1.0

    def test_none_policy_is_single_attempt(self) -> None:
        assert RetryPolicy.none().max_attempts == 1

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestDeadline:
    def test_unbounded_never_expires(self) -> None:
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        assert deadline.allows(10_000)

    def test_budget_counts_down(self) -> None:
        deadline = Deadline(30.0)
        remaining = deadline.remaining()
        assert remaining is not None and 0 < remaining <= 30.0
        assert not deadline.expired()
        assert not deadline.allows(60.0)

    def test_expired(self) -> None:
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert not deadline.allows(0.01)


class TestContentionTelemetry:
    """Wait-time histograms and queue-depth gauges on the primitives."""

    def test_rwlock_observes_wait_per_mode(self) -> None:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        lock = ReadersWriterLock(metrics=registry)
        with lock.read_lock():
            pass
        with lock.write_lock():
            pass
        reader = registry.histogram_summary(
            "nnexus_rwlock_wait_seconds", mode="reader"
        )
        writer = registry.histogram_summary(
            "nnexus_rwlock_wait_seconds", mode="writer"
        )
        assert reader.count == 1
        assert writer.count == 1

    def test_reader_wait_reflects_writer_hold_time(self) -> None:
        import time

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        lock = ReadersWriterLock(metrics=registry)
        assert lock.acquire_write()

        def blocked_reader() -> None:
            assert lock.acquire_read(timeout=5)
            lock.release_read()

        thread = threading.Thread(target=blocked_reader)
        thread.start()
        time.sleep(0.05)
        lock.release_write()
        thread.join(timeout=5)
        summary = registry.histogram_summary(
            "nnexus_rwlock_wait_seconds", mode="reader"
        )
        assert summary.count == 1
        assert summary.p50 >= 0.03  # the reader paid for the writer's hold

    def test_writers_waiting_counts_blocked_writers(self) -> None:
        import time

        lock = ReadersWriterLock()
        assert lock.acquire_read()
        entered = threading.Event()

        def blocked_writer() -> None:
            entered.set()
            assert lock.acquire_write(timeout=5)
            lock.release_write()

        thread = threading.Thread(target=blocked_writer)
        thread.start()
        entered.wait(5)
        deadline = time.monotonic() + 5.0
        while lock.writers_waiting == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert lock.writers_waiting == 1
        lock.release_read()
        thread.join(timeout=5)
        assert lock.writers_waiting == 0

    def test_admission_controller_observes_entry_wait(self) -> None:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        controller = AdmissionController(max_in_flight=2, metrics=registry)
        assert controller.try_enter()
        controller.exit()
        assert controller.try_enter()
        assert controller.try_enter()
        # Shed attempts observe too: they paid the same mutex wait, and
        # that wait is the leading saturation indicator being measured.
        assert not controller.try_enter()
        summary = registry.histogram_summary("nnexus_admission_wait_seconds")
        assert summary.count == 4
