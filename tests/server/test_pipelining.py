"""Pipelined wire protocol: many in-flight requests per connection.

Covers both ends of the ``reqid`` contract.  Server side: a raw socket
drives interleaved, out-of-order, shed, and mid-frame-expiry scenarios
and checks every response comes back tagged with the right ``reqid``.
Client side: the pipelined :class:`NNexusClient` multiplexes concurrent
callers over one connection, survives injected transport faults by
closing the broken socket before reconnecting, and counts (rather than
crashes on) responses nobody is waiting for.
"""

import socket
import threading
import time

import pytest

from repro.core.errors import DeadlineExceededError, ProtocolError
from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.server import protocol
from repro.server.client import NNexusClient, NNexusClientPool
from repro.server.faults import FaultInjector
from repro.server.resilience import RetryPolicy
from repro.server.server import serve_forever

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


class GatedLinker(NNexus):
    """``link_text`` blocks on a barrier and/or event so tests control
    exactly how many requests are in flight, and for how long."""

    def __init__(self, *, barrier=None, gate=None, **kwargs):
        super().__init__(**kwargs)
        self._barrier = barrier
        self._gate = gate

    def link_text(self, *args, **kwargs):
        if self._barrier is not None:
            self._barrier.wait(timeout=30)
        if self._gate is not None:
            assert self._gate.wait(timeout=30), "test gate never opened"
        return super().link_text(*args, **kwargs)


def make_linker(**kwargs):
    linker = GatedLinker(scheme=build_small_msc(), **kwargs)
    linker.add_objects(sample_corpus())
    return linker


def send_request(sock, method, fields=None):
    request = protocol.Request(method, fields=dict(fields or {}))
    sock.sendall(protocol.frame(protocol.encode_request(request)))


def read_response(sock):
    message = protocol.read_frame(sock.recv)
    assert message is not None, "server closed before answering"
    return protocol.decode_response(message)


class TestServerPipelining:
    def test_32_concurrent_in_flight_matched_by_reqid(self) -> None:
        """One connection sustains >= 32 simultaneous requests.

        Every linkEntry blocks on a 32-party barrier inside the linker,
        so the test passes only if all 32 are genuinely executing at
        once; distinct texts prove each response was matched to *its*
        request, not merely to some request.
        """
        depth = 32
        barrier = threading.Barrier(depth)
        linker = make_linker(barrier=barrier)
        server = serve_forever(
            linker, max_in_flight=depth * 2, pipeline_workers=depth + 4
        )
        try:
            with socket.create_connection(server.address, timeout=30) as sock:
                for i in range(depth):
                    send_request(
                        sock,
                        "linkEntry",
                        {
                            "reqid": f"q{i}",
                            "text": f"t{i} mentions a planar graph",
                            "classes": "05C10",
                            "format": "html",
                        },
                    )
                seen = {}
                for _ in range(depth):
                    response = read_response(sock)
                    assert response.ok, response.error
                    seen[response.fields["reqid"]] = response.fields["body"]
            assert set(seen) == {f"q{i}" for i in range(depth)}
            for i in range(depth):
                assert seen[f"q{i}"].startswith(f"t{i} ")
        finally:
            server.shutdown()
            server.server_close()

    def test_out_of_order_completion(self) -> None:
        """A fast read overtakes a slow one on the same connection."""
        gate = threading.Event()
        server = serve_forever(make_linker(gate=gate))
        try:
            with socket.create_connection(server.address, timeout=30) as sock:
                send_request(
                    sock,
                    "linkEntry",
                    {"reqid": "slow", "text": "planar graph", "format": "html"},
                )
                send_request(sock, "ping", {"reqid": "fast"})
                first = read_response(sock)
                assert first.fields["reqid"] == "fast"
                gate.set()
                second = read_response(sock)
                assert second.fields["reqid"] == "slow"
                assert second.ok
        finally:
            gate.set()
            server.shutdown()
            server.server_close()

    def test_untagged_requests_stay_fifo_and_unstamped(self) -> None:
        """A legacy client (no reqid) sees the old serial behaviour."""
        server = serve_forever(make_linker())
        try:
            with socket.create_connection(server.address, timeout=30) as sock:
                send_request(sock, "ping")
                send_request(sock, "describe")
                pong = read_response(sock)
                assert pong.method == "ping" and "reqid" not in pong.fields
                described = read_response(sock)
                assert described.method == "describe"
                assert described.fields["objects"] == "30"
        finally:
            server.shutdown()
            server.server_close()

    def test_writes_keep_fifo_even_when_tagged(self) -> None:
        """A tagged mutation runs on the serial path, in arrival order,
        and still echoes its reqid (stamped by the dispatcher)."""
        server = serve_forever(make_linker())
        try:
            with socket.create_connection(server.address, timeout=30) as sock:
                send_request(
                    sock, "removeObject", {"reqid": "w1", "objectid": "1"}
                )
                send_request(sock, "ping", {"reqid": "r1"})
                first = read_response(sock)
                assert first.method == "removeObject"
                assert first.fields["reqid"] == "w1"
                second = read_response(sock)
                assert second.fields["reqid"] == "r1"
        finally:
            server.shutdown()
            server.server_close()

    def test_pipeline_backlog_sheds_with_reqid(self) -> None:
        """Past pipeline_depth, tagged reads shed retryably — and the
        shed response still carries the request's reqid."""
        gate = threading.Event()
        server = serve_forever(
            make_linker(gate=gate), pipeline_depth=2, pipeline_workers=2
        )
        try:
            with socket.create_connection(server.address, timeout=30) as sock:
                for name in ("a", "b"):
                    send_request(
                        sock,
                        "linkEntry",
                        {"reqid": name, "text": "planar graph", "format": "html"},
                    )
                # Both slots are now blocked inside link_text; the third
                # tagged read must be refused immediately.
                deadline = time.monotonic() + 5
                while server._pipeline_slots.acquire(blocking=False):
                    server._pipeline_slots.release()
                    if time.monotonic() > deadline:
                        pytest.fail("pipeline slots never filled")
                    time.sleep(0.01)
                send_request(sock, "ping", {"reqid": "c"})
                shed = read_response(sock)
                assert shed.fields["reqid"] == "c"
                assert shed.code == "overloaded" and shed.retryable
                gate.set()
                tagged = {read_response(sock).fields["reqid"] for _ in range(2)}
                assert tagged == {"a", "b"}
        finally:
            gate.set()
            server.shutdown()
            server.server_close()

    def test_mid_frame_expiry_drains_in_flight_first(self) -> None:
        """A half-sent frame times out without losing the responses of
        requests already dispatched on the same connection."""
        gate = threading.Event()
        server = serve_forever(make_linker(gate=gate), request_timeout=0.5)
        try:
            with socket.create_connection(server.address, timeout=30) as sock:
                send_request(
                    sock,
                    "linkEntry",
                    {"reqid": "inflight", "text": "planar graph", "format": "html"},
                )
                # A frame header promising 100 bytes, then silence: the
                # reader is now stuck mid-frame on the request deadline.
                sock.sendall(b"0000000100<request")
                gate.set()
                first = read_response(sock)
                assert first.fields["reqid"] == "inflight"
                assert first.ok
                second = read_response(sock)
                assert second.code == "deadline" and second.retryable
                assert "reqid" not in second.fields
                # The stream is desynchronized; the server closes it.
                assert protocol.read_frame(sock.recv) is None
        finally:
            gate.set()
            server.shutdown()
            server.server_close()


class TestPipelinedClient:
    def test_concurrent_callers_share_one_connection(self) -> None:
        """32 threads on one pipelined client all complete, and the
        barrier proves their requests were concurrently in flight."""
        depth = 32
        barrier = threading.Barrier(depth)
        server = serve_forever(
            make_linker(barrier=barrier),
            max_in_flight=depth * 2,
            pipeline_workers=depth + 4,
        )
        client = NNexusClient(*server.address, timeout=30, pipeline=True)
        try:
            mux_before = client._mux
            results: dict[int, str] = {}
            errors: list[Exception] = []

            def call(i: int) -> None:
                try:
                    body, _ = client.link_entry(f"t{i} has a planar graph")
                    results[i] = body
                except Exception as exc:  # pragma: no cover - fail below
                    errors.append(exc)

            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(depth)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            assert len(results) == depth
            for i, body in results.items():
                assert body.startswith(f"t{i} ")
            assert client._mux is mux_before  # never reconnected
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_timeout_spares_connection_and_counts_late_response(self) -> None:
        """One slow request exhausts only its own deadline: the
        connection survives, and the eventual late response is counted
        as unknown instead of crashing the reader."""
        gate = threading.Event()
        server = serve_forever(make_linker(gate=gate))
        client = NNexusClient(
            *server.address,
            timeout=0.3,
            retry=RetryPolicy.none(),
            pipeline=True,
        )
        try:
            mux = client._mux
            with pytest.raises(DeadlineExceededError):
                client.link_entry("planar graph")
            assert client._mux is mux, "timeout must not tear down the mux"
            gate.set()
            deadline = time.monotonic() + 10
            while client.unknown_responses == 0:
                assert time.monotonic() < deadline, "late response never counted"
                time.sleep(0.01)
            assert client.ping()  # same connection still serves
            assert client._mux is mux
        finally:
            gate.set()
            client.close()
            server.shutdown()
            server.server_close()

    def test_fault_closes_socket_before_reconnect(self) -> None:
        """A truncated response kills the mux — its socket is closed
        before the retry builds a fresh connection."""
        faults = FaultInjector()
        linker = make_linker()
        server = serve_forever(linker, faults=faults)
        client = NNexusClient(
            *server.address, timeout=5, retry=FAST_RETRY, pipeline=True
        )
        try:
            old_mux = client._mux
            old_sock = old_mux._sock
            faults.truncate_response(on_request=1, keep_bytes=7)
            assert client.describe()["objects"] == 30
            assert not old_mux.alive
            assert old_sock.fileno() == -1, "broken socket must be closed"
            assert client._mux is not old_mux
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_unknown_reqid_is_counted_not_fatal(self) -> None:
        """A response for a reqid nobody sent is dropped with a counter
        bump; the real response still reaches its caller."""
        listener = socket.create_server(("127.0.0.1", 0))

        def fake_server() -> None:
            conn, _ = listener.accept()
            with conn:
                message = protocol.read_frame(conn.recv)
                request = protocol.decode_request(message)
                bogus = protocol.Response(status="ok", method="ping")
                bogus.fields["pong"] = "1"
                bogus.fields["reqid"] = "nobody-sent-this"
                conn.sendall(protocol.frame(protocol.encode_response(bogus)))
                real = protocol.Response(status="ok", method="ping")
                real.fields["pong"] = "1"
                real.fields["reqid"] = request.fields["reqid"]
                conn.sendall(protocol.frame(protocol.encode_response(real)))
                # Hold the connection until the client hangs up.
                conn.settimeout(10)
                try:
                    conn.recv(1)
                except (TimeoutError, OSError):
                    pass

        thread = threading.Thread(target=fake_server, daemon=True)
        thread.start()
        host, port = listener.getsockname()[:2]
        client = NNexusClient(host, port, timeout=10, pipeline=True)
        try:
            assert client.ping()
            assert client.unknown_responses == 1
        finally:
            client.close()
            listener.close()
            thread.join(timeout=10)

    def test_describe_tolerates_reqid_echo(self) -> None:
        """describe() must not int()-parse the transport's reqid echo."""
        server = serve_forever(make_linker())
        client = NNexusClient(*server.address, timeout=10, pipeline=True)
        try:
            stats = client.describe()
            assert stats["objects"] == 30
            assert "reqid" not in stats and "traceid" not in stats
        finally:
            client.close()
            server.shutdown()
            server.server_close()


class TestLegacyClientCloseOnFailure:
    """Satellite: every transport failure path closes the socket before
    the client reconnects (REP103 discipline, client side)."""

    @pytest.mark.parametrize(
        "inject",
        [
            lambda faults: faults.truncate_response(on_request=1, keep_bytes=7),
            lambda faults: faults.corrupt_response(on_request=1),
            lambda faults: faults.drop_connection(on_request=1),
        ],
        ids=["truncate", "corrupt", "drop"],
    )
    def test_socket_closed_on_transport_failure(self, inject) -> None:
        faults = FaultInjector()
        server = serve_forever(make_linker(), faults=faults)
        client = NNexusClient(
            *server.address, timeout=5, retry=RetryPolicy.none()
        )
        try:
            old_sock = client._sock
            inject(faults)
            with pytest.raises(ProtocolError):
                client.describe()
            assert client._sock is None
            assert old_sock.fileno() == -1, "failure path must close the fd"
            # And the next call transparently reconnects.
            assert client.describe()["objects"] == 30
        finally:
            client.close()
            server.shutdown()
            server.server_close()


class TestClientPool:
    def test_pool_reuses_and_bounds_connections(self) -> None:
        server = serve_forever(make_linker())
        pool = NNexusClientPool(*server.address, size=2, timeout=10)
        try:
            with pool.connection() as first:
                assert first.ping()
            with pool.connection() as again:
                assert again is first  # returned to the pool and reused

            acquired = threading.Event()
            released = threading.Event()

            def third_waiter() -> None:
                with pool.connection():
                    acquired.set()

            with pool.connection(), pool.connection():
                thread = threading.Thread(target=third_waiter, daemon=True)
                thread.start()
                assert not acquired.wait(timeout=0.3), (
                    "pool handed out more than its bound"
                )
            assert acquired.wait(timeout=10)
            thread.join(timeout=10)
            released.set()
        finally:
            pool.close()
            server.shutdown()
            server.server_close()

    def test_closed_pool_refuses_and_closes_clients(self) -> None:
        server = serve_forever(make_linker())
        pool = NNexusClientPool(*server.address, size=2, timeout=10)
        try:
            with pool.connection() as client:
                pass
            assert client.connected
            pool.close()
            assert not client.connected
            with pytest.raises(RuntimeError):
                with pool.connection():
                    pass  # pragma: no cover
        finally:
            pool.close()
            server.shutdown()
            server.server_close()
