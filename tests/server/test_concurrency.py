"""Stress test: many concurrent clients against one server."""

import threading
import time

import pytest

from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.server.client import NNexusClient
from repro.server.server import serve_forever


@pytest.fixture()
def server():
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())
    instance = serve_forever(linker)
    yield instance
    instance.shutdown()
    instance.server_close()


def test_server_survives_garbage_frames(server) -> None:
    """Malformed input must never take the server down (fault injection)."""
    import socket

    from repro.server import protocol

    host, port = server.address
    payloads = [
        b"not a frame at all",                      # bad header
        b"0000000010<request>",                      # bad xml / truncated
        protocol.frame("<notxml"),                   # parse error
        protocol.frame("<request method='nope'/>"),  # unknown method
        protocol.frame("<other/>"),                  # wrong root
        b"00000",                                    # EOF mid-header
    ]
    for payload in payloads:
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(payload)
            sock.settimeout(2)
            try:
                sock.recv(65536)
            except (TimeoutError, OSError):
                pass  # server may close silently on framing errors
    # The server is still healthy afterwards.
    with NNexusClient(host, port) as client:
        assert client.ping()
        assert client.describe()["objects"] == 30


def test_parallel_readers(server) -> None:
    """Twelve threads linking concurrently get consistent answers."""
    host, port = server.address
    errors: list[Exception] = []
    results: list[str] = []
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        try:
            with NNexusClient(host, port) as client:
                for __ in range(10):
                    __, links = client.link_entry(
                        "every planar graph is a graph", classes=["05C10"]
                    )
                    targets = tuple(sorted(l["target"] for l in links))
                    with lock:
                        results.append(str(targets))
        except Exception as exc:  # noqa: BLE001 - collected for assertion
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert len(results) == 120
    assert len(set(results)) == 1  # every reader saw the same resolution


def test_parallel_link_requests_overlap(server) -> None:
    """Two linkEntry requests hold the read lock *simultaneously*.

    With the old single global lock this barrier could never be crossed:
    one request would block the other and both workers would time out.
    """
    barrier = threading.Barrier(2, timeout=5)
    original = server.linker.link_text

    def rendezvous_link_text(text, source_classes=()):
        barrier.wait()  # passes only if both requests are inside at once
        return original(text, source_classes=source_classes)

    server.linker.link_text = rendezvous_link_text
    host, port = server.address
    errors: list[Exception] = []

    def worker() -> None:
        try:
            with NNexusClient(host, port) as client:
                client.link_entry("a tree", classes=["05C05"])
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker) for __ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert not errors


def test_writer_excludes_overlapping_readers(server) -> None:
    """addObject waits for in-flight readers, then runs exclusively."""
    entered = threading.Event()
    release = threading.Event()
    original = server.linker.link_text

    def slow_link_text(text, source_classes=()):
        entered.set()
        release.wait(10)
        return original(text, source_classes=source_classes)

    server.linker.link_text = slow_link_text
    host, port = server.address
    events: list[str] = []
    lock = threading.Lock()

    def reader() -> None:
        with NNexusClient(host, port) as client:
            client.link_entry("a tree", classes=["05C05"])
            with lock:
                events.append("reader-done")

    def writer() -> None:
        entered.wait(5)
        with NNexusClient(host, port) as client:
            client.add_object(
                CorpusObject(950, "matching", defines=["matching"],
                             classes=["05C70"], text="Edge set, no shared ends.")
            )
            with lock:
                events.append("writer-done")

    reader_thread = threading.Thread(target=reader)
    writer_thread = threading.Thread(target=writer)
    reader_thread.start()
    writer_thread.start()
    assert entered.wait(5)
    time.sleep(0.3)  # give the writer time to (wrongly) slip past the reader
    with lock:
        assert events == []  # writer is parked behind the read lock
    release.set()
    reader_thread.join(timeout=10)
    writer_thread.join(timeout=10)
    # Client-side completion order between the two sockets is not strict,
    # but both must have finished once the reader released the lock.
    assert sorted(events) == ["reader-done", "writer-done"]


def test_concurrent_writers_and_readers(server) -> None:
    """Writers add disjoint objects while readers link; no corruption."""
    host, port = server.address
    errors: list[Exception] = []
    lock = threading.Lock()

    def writer(base: int) -> None:
        try:
            with NNexusClient(host, port) as client:
                for offset in range(5):
                    object_id = 10_000 + base * 100 + offset
                    client.add_object(
                        CorpusObject(
                            object_id,
                            f"concept {base} {offset}",
                            defines=[f"zconcept{base}x{offset}"],
                            classes=["05C99"],
                            text="generated entry",
                        )
                    )
        except Exception as exc:  # noqa: BLE001
            with lock:
                errors.append(exc)

    def reader() -> None:
        try:
            with NNexusClient(host, port) as client:
                for __ in range(15):
                    client.link_entry("a tree and a graph", classes=["05C05"])
        except Exception as exc:  # noqa: BLE001
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    threads += [threading.Thread(target=reader) for __ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    with NNexusClient(host, port) as client:
        info = client.describe()
    assert info["objects"] == 30 + 4 * 5
