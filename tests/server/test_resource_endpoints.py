"""Resource & saturation observability over the wire and the gateway:
getResourceStats, getProfile, GET /debug/profile, contention metrics."""

import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SamplingProfiler
from repro.ontology.msc import build_small_msc
from repro.server.client import NNexusClient, RemoteError
from repro.server.http_gateway import serve_http
from repro.server.server import serve_forever


def make_linker(metrics: bool = True) -> NNexus:
    linker = NNexus(
        scheme=build_small_msc(),
        metrics=MetricsRegistry() if metrics else None,
    )
    linker.add_objects(sample_corpus())
    return linker


@pytest.fixture()
def server():
    instance = serve_forever(make_linker())
    yield instance
    instance.shutdown()
    instance.server_close()


@pytest.fixture()
def profiled_server():
    profiler = SamplingProfiler(interval_sec=0.001)
    profiler.start()
    instance = serve_forever(make_linker(), profiler=profiler)
    yield instance
    instance.shutdown()
    instance.server_close()
    profiler.stop()


def fetch(gateway, path: str):
    host, port = gateway.address
    return urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10)


class TestGetResourceStats:
    def test_reports_components_and_server_saturation(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            client.link_entry("every planar graph is sparse", classes=["05C10"])
            stats = client.get_resource_stats()
        assert stats["objects"] == 30
        assert stats["uptime_seconds"] >= 0.0
        components = stats["memory"]["components"]
        for name in ("objects", "map_segments", "invalidation",
                     "render_cache", "trace_ring", "metrics"):
            assert name in components, name
            assert components[name]["bytes"] >= 0
        # Shallow call: no deep walk has happened yet.
        assert stats["memory"]["reconcile"] == {}
        srv = stats["server"]
        assert srv["max_in_flight"] >= 1
        # Debug methods bypass admission, so this request holds no slot.
        assert srv["in_flight"] >= 0
        assert srv["writers_waiting"] == 0
        assert srv["draining"] is False

    def test_deep_flag_forces_a_reconcile_within_2x(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            stats = client.get_resource_stats(deep=True)
        reconcile = stats["memory"]["reconcile"]
        assert reconcile, "deep=1 must run the deep walk"
        for component, entry in reconcile.items():
            assert 0.5 <= entry["ratio"] <= 2.0, (component, entry)

    def test_counts_as_a_read_method(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            client.get_resource_stats()
            snapshot = client.get_metrics()
        counters = {
            (c["name"], c["labels"].get("method")): c["value"]
            for c in snapshot["counters"]
        }
        assert counters[("nnexus_server_requests_total", "getResourceStats")] >= 1


class TestGetProfile:
    def test_disabled_profiler_is_a_client_error(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            with pytest.raises(RemoteError, match="profiling is not enabled"):
                client.get_profile()

    def test_returns_aggregated_samples_under_load(self, profiled_server) -> None:
        host, port = profiled_server.address
        with NNexusClient(host, port) as client:
            deadline = time.monotonic() + 5.0
            profile = client.get_profile()
            while profile["samples"] == 0 and time.monotonic() < deadline:
                client.link_entry("every planar graph is sparse",
                                  classes=["05C10"])
                profile = client.get_profile()
        assert profile["enabled"] is True
        assert profile["running"] is True
        assert profile["samples"] > 0
        assert profile["distinct_stacks"] >= 1
        assert profile["stacks"][0]["count"] >= 1

    def test_limit_caps_returned_stacks(self, profiled_server) -> None:
        host, port = profiled_server.address
        with NNexusClient(host, port) as client:
            deadline = time.monotonic() + 5.0
            while client.get_profile()["distinct_stacks"] < 2:
                if time.monotonic() > deadline:
                    pytest.skip("sampler found <2 stacks on this machine")
                client.link_entry("a tree is bipartite", classes=["05C05"])
            profile = client.get_profile(limit=1)
        assert len(profile["stacks"]) == 1
        assert profile["distinct_stacks"] >= 2

    def test_non_positive_limit_is_a_client_error(self, profiled_server) -> None:
        host, port = profiled_server.address
        with NNexusClient(host, port) as client:
            for limit in (0, -3):
                with pytest.raises(RemoteError, match="bad limit"):
                    client.get_profile(limit=limit)

    def test_collapsed_format(self, profiled_server) -> None:
        host, port = profiled_server.address
        with NNexusClient(host, port) as client:
            deadline = time.monotonic() + 5.0
            while client.get_profile()["samples"] == 0:
                if time.monotonic() > deadline:
                    break
                client.link_entry("the graph is connected", classes=["05C40"])
            collapsed = client.get_profile_collapsed()
        for line in collapsed.splitlines():
            assert re.fullmatch(r"[^ ]+ \d+", line), line


class TestDebugProfileEndpoint:
    def test_404_when_profiling_disabled(self) -> None:
        gateway = serve_http(make_linker())
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(gateway, "/debug/profile")
            assert excinfo.value.code == 404
        finally:
            gateway.shutdown()
            gateway.server_close()

    def test_json_and_collapsed_bodies(self) -> None:
        profiler = SamplingProfiler(interval_sec=0.001)
        profiler.start()
        gateway = serve_http(make_linker(), profiler=profiler)
        try:
            deadline = time.monotonic() + 5.0
            while profiler.sample_count() == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            with fetch(gateway, "/debug/profile") as resp:
                body = json.loads(resp.read().decode("utf-8"))
                assert resp.headers["Content-Type"].startswith("application/json")
            assert body["enabled"] is True
            assert body["samples"] > 0
            with fetch(gateway, "/debug/profile?format=collapsed") as resp:
                text = resp.read().decode("utf-8")
                assert resp.headers["Content-Type"].startswith("text/plain")
            for line in text.splitlines():
                assert re.fullmatch(r"[^ ]+ \d+", line), line
        finally:
            gateway.shutdown()
            gateway.server_close()
            profiler.stop()

    def test_bad_format_and_limit_are_400(self) -> None:
        profiler = SamplingProfiler(interval_sec=0.05)
        profiler.start()
        gateway = serve_http(make_linker(), profiler=profiler)
        try:
            for path in ("/debug/profile?format=xml",
                         "/debug/profile?limit=zero",
                         "/debug/profile?limit=-3"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    fetch(gateway, path)
                assert excinfo.value.code == 400, path
        finally:
            gateway.shutdown()
            gateway.server_close()
            profiler.stop()


class TestSaturationTelemetry:
    def test_rwlock_wait_histograms_by_mode(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            client.link_entry("every planar graph is sparse", classes=["05C10"])
            client.set_policy(1, "")
            snapshot = client.get_metrics()
        modes = {
            h["labels"].get("mode")
            for h in snapshot["histograms"]
            if h["name"] == "nnexus_rwlock_wait_seconds"
        }
        # linkEntry takes the writer side, reads take the reader side.
        assert modes >= {"reader", "writer"}

    def test_admission_wait_histogram_recorded(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            client.ping()
            snapshot = client.get_metrics()
        names = {h["name"] for h in snapshot["histograms"]}
        assert "nnexus_admission_wait_seconds" in names

    def test_pipeline_gauges_and_queue_wait(self, server) -> None:
        host, port = server.address
        # A pipelined client tags requests with reqids, routing them
        # through the shared executor and its queue-wait histogram.
        with NNexusClient(host, port, pipeline=True) as client:
            for _ in range(4):
                assert client.describe()["objects"] == 30
            snapshot = client.get_metrics()
        gauges = {g["name"] for g in snapshot["gauges"]}
        assert "nnexus_pipeline_in_flight" in gauges
        assert "nnexus_pipeline_depth_limit" in gauges
        histograms = {h["name"] for h in snapshot["histograms"]}
        assert "nnexus_pipeline_queue_wait_seconds" in histograms

    def test_gateway_loop_lag_probe_feeds_metrics(self) -> None:
        gateway = serve_http(make_linker(), loop_lag_interval=0.01)
        try:
            deadline = time.monotonic() + 5.0
            text = ""
            while time.monotonic() < deadline:
                with fetch(gateway, "/metrics") as resp:
                    text = resp.read().decode("utf-8")
                if "nnexus_loop_lag_seconds" in text:
                    break
                time.sleep(0.02)
            assert "nnexus_loop_lag_seconds" in text
            assert "nnexus_loop_lag_last_seconds" in text
        finally:
            gateway.shutdown()
            gateway.server_close()
