"""Tests for the observability surface: getMetrics and GET /metrics."""

import json
import re
import urllib.request

import pytest

from repro.core.linker import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.obs.bench import STAGES
from repro.obs.metrics import MetricsRegistry
from repro.ontology.msc import build_small_msc
from repro.server.client import NNexusClient
from repro.server.http_gateway import serve_http
from repro.server.server import serve_forever


def make_linker(metrics: bool = True) -> NNexus:
    linker = NNexus(
        scheme=build_small_msc(),
        metrics=MetricsRegistry() if metrics else None,
    )
    linker.add_objects(sample_corpus())
    return linker


@pytest.fixture()
def server():
    instance = serve_forever(make_linker())
    yield instance
    instance.shutdown()
    instance.server_close()


@pytest.fixture()
def gateway():
    instance = serve_http(make_linker())
    yield instance
    instance.shutdown()
    instance.server_close()


def fetch_metrics_text(gateway) -> tuple[str, str]:
    host, port = gateway.address
    with urllib.request.urlopen(f"http://{host}:{port}/metrics", timeout=10) as resp:
        return resp.read().decode("utf-8"), resp.headers.get("Content-Type", "")


def post_link(gateway, text: str, classes: list[str]) -> None:
    host, port = gateway.address
    request = urllib.request.Request(
        f"http://{host}:{port}/link",
        data=json.dumps({"text": text, "classes": classes}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        resp.read()


class TestWireGetMetrics:
    def test_snapshot_reflects_traffic(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            client.link_entry("every planar graph is sparse", classes=["05C10"])
            snapshot = client.get_metrics()

        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snapshot["counters"]
        }
        assert counters[("nnexus_link_requests_total", ())] >= 1
        assert counters[("nnexus_links_created_total", ())] >= 1
        # The dispatch layer counts itself too.
        assert (
            counters[
                ("nnexus_server_requests_total",
                 (("method", "linkEntry"), ("status", "ok")))
            ]
            == 1
        )

    def test_snapshot_has_stage_histograms(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            client.link_entry("the graph is connected", classes=["05C40"])
            snapshot = client.get_metrics()

        stage_series = {
            h["labels"]["stage"]
            for h in snapshot["histograms"]
            if h["name"] == "nnexus_pipeline_stage_seconds"
        }
        # linkEntry exercises the full pipeline including the render stage.
        assert stage_series >= set(STAGES)

    def test_in_flight_gauge_present(self, server) -> None:
        host, port = server.address
        with NNexusClient(host, port) as client:
            snapshot = client.get_metrics()
        gauges = {g["name"] for g in snapshot["gauges"]}
        assert "nnexus_server_in_flight" in gauges
        assert "nnexus_objects" in gauges

    def test_null_recorder_still_reports_cache_counters(self) -> None:
        instance = serve_forever(make_linker(metrics=False))
        try:
            host, port = instance.address
            with NNexusClient(host, port) as client:
                client.link_entry("a tree", classes=["05C05"])
                snapshot = client.get_metrics()
            names = {c["name"] for c in snapshot["counters"]}
            assert "nnexus_cache_hits_total" in names
            assert "nnexus_cache_misses_total" in names
            # Pipeline histograms need an attached registry.
            assert snapshot["histograms"] == []
        finally:
            instance.shutdown()
            instance.server_close()


class TestHttpMetricsEndpoint:
    def test_prometheus_text_with_stage_timings(self, gateway) -> None:
        post_link(gateway, "every planar graph is sparse", ["05C10"])
        post_link(gateway, "the graph is connected", ["05C40"])
        text, content_type = fetch_metrics_text(gateway)

        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "# TYPE nnexus_pipeline_stage_seconds summary" in text
        for stage in STAGES:
            assert f'stage="{stage}"' in text, stage
        assert 'quantile="0.99"' in text
        assert "nnexus_pipeline_stage_seconds_count" in text
        assert "# TYPE nnexus_objects gauge" in text
        # A just-finished POST may still hold its admission slot, so the
        # gauge value races between 0 and 1 — assert the series exists.
        assert re.search(r"^nnexus_http_in_flight \d+$", text, re.MULTILINE)

    def test_scrape_is_parseable_sample_lines(self, gateway) -> None:
        post_link(gateway, "a tree is bipartite", ["05C05"])
        text, __ = fetch_metrics_text(gateway)
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.split()[1] != ""
                continue
            # Every sample line: <name>[{labels}] <float>
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part

    def test_metrics_served_without_registry(self) -> None:
        instance = serve_http(make_linker(metrics=False))
        try:
            text, __ = fetch_metrics_text(instance)
            # Cache/corpus series come from the linker itself.
            assert "# TYPE nnexus_cache_misses_total counter" in text
            assert "# TYPE nnexus_objects gauge" in text
            assert "nnexus_pipeline_stage_seconds" not in text
        finally:
            instance.shutdown()
            instance.server_close()
