"""Cache and metrics consistency under concurrent reads and writes.

Readers hammer ``linkEntry`` (socket server) and ``GET /entry`` (HTTP
gateway, which serves through the render cache) while a writer grows the
corpus.  Under the readers-writer lock every observed body must equal
the rendering of some *prefix* of the write sequence — never a torn
state — and once the writer finishes, reads must serve the fully fresh
rendering.  A :class:`MetricsRegistry` is attached throughout so the
instrumented hot path runs under real contention.
"""

import json
import threading
import urllib.request

from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.core.render import render_html
from repro.obs.metrics import MetricsRegistry
from repro.ontology.msc import build_small_msc
from repro.server.client import NNexusClient
from repro.server.http_gateway import serve_http
from repro.server.resilience import ReadersWriterLock
from repro.server.server import serve_forever

READER_ENTRY = CorpusObject(
    9, "walkthrough", defines=["walkthrough"], classes=["05C40"],
    text="The graph has a tree and a cycle inside.",
)

BASE_OBJECTS = [
    CorpusObject(1, "graph", defines=["graph"], classes=["05C99"],
                 text="Vertices and edges."),
    READER_ENTRY,
]

# Each write defines a label occurring in READER_ENTRY's text, so every
# write invalidates the cached rendering of entry 9.
WRITES = [
    CorpusObject(20, "tree", defines=["tree"], classes=["05C05"],
                 text="An acyclic graph."),
    CorpusObject(21, "cycle", defines=["cycle"], classes=["05C38"],
                 text="A closed walk."),
]

LINK_TEXT = "the graph has a tree and a cycle"
LINK_CLASSES = ["05C40"]


def build_linker(extra: list[CorpusObject]) -> NNexus:
    linker = NNexus(scheme=build_small_msc(), metrics=MetricsRegistry())
    linker.add_objects(BASE_OBJECTS)
    for obj in extra:
        linker.add_object(obj)
    return linker


def expected_prefix_states(render):
    """One expected body per write-sequence prefix (0..len(WRITES))."""
    return [render(build_linker(WRITES[:k])) for k in range(len(WRITES) + 1)]


def test_link_entry_consistent_under_writes() -> None:
    expected = expected_prefix_states(
        lambda linker: render_html(
            linker.link_text(LINK_TEXT, source_classes=LINK_CLASSES)
        )
    )
    assert len(set(expected)) == len(expected)  # every write changes the answer

    server = serve_forever(build_linker([]))
    try:
        host, port = server.address
        bodies: list[str] = []
        errors: list[Exception] = []
        lock = threading.Lock()
        stop = threading.Event()

        def reader() -> None:
            try:
                with NNexusClient(host, port) as client:
                    while not stop.is_set():
                        body, __ = client.link_entry(LINK_TEXT, classes=LINK_CLASSES)
                        with lock:
                            bodies.append(body)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()

        with NNexusClient(host, port) as writer:
            for obj in WRITES:
                writer.add_object(obj)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        assert not errors
        assert bodies
        assert set(bodies) <= set(expected), "observed a torn/unknown rendering"

        # After the last write, a fresh read sees the final state.
        with NNexusClient(host, port) as client:
            final_body, __ = client.link_entry(LINK_TEXT, classes=LINK_CLASSES)
            snapshot = client.get_metrics()
        assert final_body == expected[-1]

        # The registry survived the contention with coherent totals.
        requests = sum(
            c["value"]
            for c in snapshot["counters"]
            if c["name"] == "nnexus_link_requests_total"
        )
        assert requests == len(bodies) + 1
        stages = {
            h["labels"]["stage"]: h["count"]
            for h in snapshot["histograms"]
            if h["name"] == "nnexus_pipeline_stage_seconds"
        }
        assert stages.get("match", 0) >= len(bodies)
    finally:
        server.shutdown()
        server.server_close()


def test_cached_entry_consistent_under_writes() -> None:
    expected = expected_prefix_states(lambda linker: linker.render_object(9))
    assert len(set(expected)) == len(expected)

    linker = build_linker([])
    rwlock = ReadersWriterLock()
    gateway = serve_http(linker, rwlock=rwlock)
    try:
        host, port = gateway.address
        bodies: list[str] = []
        errors: list[Exception] = []
        lock = threading.Lock()
        stop = threading.Event()

        def fetch_entry() -> str:
            url = f"http://{host}:{port}/entry/9"
            with urllib.request.urlopen(url, timeout=10) as resp:
                return json.loads(resp.read())["html"]

        def reader() -> None:
            try:
                while not stop.is_set():
                    body = fetch_entry()
                    with lock:
                        bodies.append(body)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        # Prime the cache so the first write invalidates a cached slot.
        assert fetch_entry() == expected[0]

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()

        # The gateway is read-only; mutations come from "the site" under
        # the same readers-writer lock the gateway reads with.  Reading
        # the entry after each write re-renders it, so the next write
        # invalidates a clean cache slot.
        for obj in WRITES:
            with rwlock.write_lock():
                linker.add_object(obj)
            fetch_entry()
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        assert not errors
        assert bodies
        assert set(bodies) <= set(expected), "cache served a stale/torn rendering"
        assert fetch_entry() == expected[-1]

        # The cache was actually exercised (hits) and invalidated per write.
        snapshot = gateway.metrics_snapshot()
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert counters["nnexus_cache_invalidations_total"] >= len(WRITES)
        assert counters["nnexus_cache_hits_total"] >= 1
    finally:
        gateway.shutdown()
        gateway.server_close()
