"""Startup/shutdown hygiene of ``python -m repro.server`` (the CLI).

Regression suite for the REP103 findings the invariant checker
surfaced: a failed startup (occupied port, missing corpus file) used to
leak the opened storage backend and the trace exporter because nothing
between ``open_storage`` and the serve loop's ``finally`` closed them.
"""

from __future__ import annotations

import socket

import pytest

from repro.server import __main__ as server_main


class _Recorder:
    """Wraps open_storage/JsonlExporter so close() calls are observable."""

    def __init__(self, monkeypatch) -> None:
        self.closed: list[str] = []
        recorder = self

        real_open = server_main.open_storage

        def tracking_open(*args, **kwargs):
            storage = real_open(*args, **kwargs)
            original_close = storage.close

            def close() -> None:
                recorder.closed.append("storage")
                original_close()

            storage.close = close  # type: ignore[method-assign]
            return storage

        class FakeExporter:
            def __init__(self, path) -> None:
                self.path = path

            def export(self, spans) -> None:  # pragma: no cover - unused
                pass

            def close(self) -> None:
                recorder.closed.append("exporter")

        monkeypatch.setattr(server_main, "open_storage", tracking_open)
        monkeypatch.setattr(server_main, "JsonlExporter", FakeExporter)


@pytest.fixture()
def recorder(monkeypatch) -> _Recorder:
    return _Recorder(monkeypatch)


def _occupied_port() -> tuple[socket.socket, int]:
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    return blocker, blocker.getsockname()[1]


class TestStartupFailureHygiene:
    def test_occupied_port_returns_one_and_closes_resources(
        self, tmp_path, recorder
    ) -> None:
        blocker, port = _occupied_port()
        try:
            rc = server_main.main(
                [
                    "--host",
                    "127.0.0.1",
                    "--port",
                    str(port),
                    "--backend",
                    "engine",
                    "--data-dir",
                    str(tmp_path / "data"),
                    "--trace-jsonl",
                    str(tmp_path / "trace.jsonl"),
                ]
            )
        finally:
            blocker.close()
        assert rc == 1
        assert "storage" in recorder.closed
        assert "exporter" in recorder.closed

    def test_storage_reopens_cleanly_after_bind_failure(self, tmp_path) -> None:
        """The WAL handle must actually be released, not just flagged."""
        data_dir = tmp_path / "data"
        blocker, port = _occupied_port()
        try:
            assert (
                server_main.main(
                    [
                        "--host",
                        "127.0.0.1",
                        "--port",
                        str(port),
                        "--backend",
                        "engine",
                        "--data-dir",
                        str(data_dir),
                    ]
                )
                == 1
            )
        finally:
            blocker.close()
        storage = server_main.open_storage("engine", data_dir)
        try:
            assert storage.load().objects == []
        finally:
            storage.close()

    def test_missing_corpus_file_fails_cleanly_and_closes_storage(
        self, tmp_path, recorder
    ) -> None:
        # FileNotFoundError is an OSError: handled as an operator error.
        rc = server_main.main(
            [
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--backend",
                "engine",
                "--data-dir",
                str(tmp_path / "data"),
                "--corpus",
                str(tmp_path / "does-not-exist.json"),
            ]
        )
        assert rc == 1
        assert "storage" in recorder.closed

    def test_non_oserror_startup_failure_still_closes_storage(
        self, tmp_path, recorder, monkeypatch
    ) -> None:
        def exploding_corpus(path):
            raise RuntimeError("corrupt corpus payload")

        monkeypatch.setattr(server_main, "load_corpus", exploding_corpus)
        corpus = tmp_path / "corpus.json"
        corpus.write_text("[]")
        with pytest.raises(RuntimeError):
            server_main.main(
                [
                    "--host",
                    "127.0.0.1",
                    "--port",
                    "0",
                    "--backend",
                    "engine",
                    "--data-dir",
                    str(tmp_path / "data"),
                    "--corpus",
                    str(corpus),
                ]
            )
        assert "storage" in recorder.closed
