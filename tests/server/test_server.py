"""End-to-end tests for the socket server and client."""

import pytest

from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.server.client import NNexusClient, RemoteError
from repro.server.server import serve_forever


@pytest.fixture()
def server():
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())
    instance = serve_forever(linker)
    yield instance
    instance.shutdown()
    instance.server_close()


@pytest.fixture()
def client(server):
    with NNexusClient(*server.address) as instance:
        yield instance


class TestBasics:
    def test_ping(self, client) -> None:
        assert client.ping()

    def test_describe(self, client) -> None:
        info = client.describe()
        assert info["objects"] == 30
        assert info["concepts"] > 30

    def test_link_entry_html(self, client) -> None:
        body, links = client.link_entry(
            "every planar graph is sparse", classes=["05C10"]
        )
        assert "<a" in body
        assert links[0]["phrase"] == "planar graph"
        assert links[0]["target"] == "2"

    def test_link_entry_annotations(self, client) -> None:
        body, __ = client.link_entry("a tree here", classes=["05C05"],
                                     fmt="annotations")
        assert "tree[->11]" in body

    def test_steering_respected_over_wire(self, client) -> None:
        __, graph_links = client.link_entry("the graph", classes=["05C40"])
        assert graph_links[0]["target"] == "5"
        __, set_links = client.link_entry("the graph", classes=["03E20"])
        assert set_links[0]["target"] == "6"

    def test_unknown_format_is_remote_error(self, client) -> None:
        with pytest.raises(RemoteError):
            client.link_entry("x", fmt="docx")


class TestMutations:
    def test_add_then_link(self, client) -> None:
        client.add_object(
            CorpusObject(700, "spanning tree", defines=["spanning tree"],
                         classes=["05C05"], text="A tree touching every vertex.")
        )
        __, links = client.link_entry("take a spanning tree", classes=["05C05"])
        assert links[0]["target"] == "700"

    def test_add_duplicate_is_remote_error(self, client) -> None:
        with pytest.raises(RemoteError):
            client.add_object(CorpusObject(5, "dup", defines=["dup"]))

    def test_remove_object(self, client) -> None:
        client.remove_object(11)  # tree
        __, links = client.link_entry("a tree here", classes=["05C05"])
        assert all(link["phrase"] != "tree" for link in links)

    def test_remove_unknown_is_remote_error(self, client) -> None:
        with pytest.raises(RemoteError):
            client.remove_object(12345)

    def test_update_object(self, client) -> None:
        client.update_object(
            CorpusObject(11, "tree", defines=["rooted tree"], classes=["05C05"],
                         text="changed")
        )
        __, links = client.link_entry("a rooted tree", classes=["05C05"])
        assert links and links[0]["target"] == "11"

    def test_set_policy_over_wire(self, client) -> None:
        client.set_policy(11, "forbid tree\n")
        __, links = client.link_entry("a tree here", classes=["05C05"])
        assert all(link["phrase"] != "tree" for link in links)

    def test_invalidated_ids_returned(self, client) -> None:
        invalidated = client.add_object(
            CorpusObject(800, "subgraph", defines=["subgraph", "subgraphs"],
                         classes=["05C99"], text="Part of a graph.")
        )
        assert isinstance(invalidated, list)


class TestConcurrentClients:
    def test_two_clients_share_state(self, server) -> None:
        with NNexusClient(*server.address) as first:
            with NNexusClient(*server.address) as second:
                first.add_object(
                    CorpusObject(900, "clique", defines=["clique"],
                                 classes=["05C69"], text="Complete subgraph.")
                )
                __, links = second.link_entry("a clique", classes=["05C69"])
                assert links[0]["target"] == "900"
