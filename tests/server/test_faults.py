"""Fault-injection suite: the client/server stack under induced failure.

Every test scripts a :class:`~repro.server.faults.FaultInjector` against
a live server and asserts the retrying client (or a raw socket) observes
exactly the hardened behavior: transparent retries for transient faults,
immediate surfacing of permanent ones, structured shedding under load,
and connections that survive bad requests.
"""

import socket
import threading
import time

import pytest

from repro.core.errors import ProtocolError
from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.server import protocol
from repro.server.client import NNexusClient, RemoteError
from repro.server.faults import FaultInjector
from repro.server.resilience import RetryPolicy
from repro.server.server import serve_forever

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


def make_server(**kwargs):
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())
    return serve_forever(linker, **kwargs)


@pytest.fixture()
def faults():
    return FaultInjector()


@pytest.fixture()
def server(faults):
    instance = make_server(faults=faults)
    yield instance
    instance.shutdown()
    instance.server_close()


class TestClientRetries:
    def test_survives_dropped_connection(self, server, faults) -> None:
        """A mid-call disconnect is retried on a fresh connection."""
        faults.drop_connection(on_request=1)
        with NNexusClient(*server.address, retry=FAST_RETRY) as client:
            assert client.ping()
        assert faults.pending == 0
        assert faults.requests_seen == 2  # the drop plus the retry

    def test_survives_truncated_frame(self, server, faults) -> None:
        """A half-written response is treated as a dead connection."""
        faults.truncate_response(on_request=1, keep_bytes=7)
        with NNexusClient(*server.address, retry=FAST_RETRY) as client:
            body, links = client.link_entry(
                "every planar graph is sparse", classes=["05C10"]
            )
        assert links[0]["phrase"] == "planar graph"
        assert faults.requests_seen == 2

    def test_survives_corrupted_frame(self, server, faults) -> None:
        faults.corrupt_response(on_request=1)
        with NNexusClient(*server.address, retry=FAST_RETRY) as client:
            assert client.describe()["objects"] == 30
        assert faults.requests_seen == 2

    def test_survives_injected_overload(self, server, faults) -> None:
        """A retryable 'overloaded' reply is retried on the same connection."""
        faults.force_error("overloaded", on_request=1)
        with NNexusClient(*server.address, retry=FAST_RETRY) as client:
            assert client.ping()
        assert faults.requests_seen == 2

    def test_nonretryable_error_is_not_retried(self, server, faults) -> None:
        faults.force_error("bad-request", on_request=1)
        with NNexusClient(*server.address, retry=FAST_RETRY) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.ping()
            assert excinfo.value.code == "bad-request"
            assert not excinfo.value.retryable
            # Exactly one request reached the server: no hidden retry.
            assert faults.requests_seen == 1
            # The connection is still healthy for the next call.
            assert client.ping()
        assert faults.requests_seen == 2

    def test_retries_exhausted_surfaces_error(self, server, faults) -> None:
        faults.drop_connection(on_request=1)
        faults.drop_connection(on_request=2)
        policy = RetryPolicy(max_attempts=2, base_delay=0.01)
        with NNexusClient(*server.address, retry=policy) as client:
            with pytest.raises((ProtocolError, ConnectionError, OSError)):
                client.ping()

    def test_no_retry_policy_fails_fast(self, server, faults) -> None:
        faults.force_error("overloaded", on_request=1)
        with NNexusClient(*server.address, retry=RetryPolicy.none()) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.ping()
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retryable

    def test_close_is_idempotent(self, server) -> None:
        client = NNexusClient(*server.address, retry=FAST_RETRY)
        assert client.ping()
        client.close()
        client.close()
        assert not client.connected
        # A closed client reconnects transparently on the next call.
        assert client.ping()
        client.close()


class TestOverloadShedding:
    def test_saturated_server_sheds_with_structured_error(self) -> None:
        """Past max_in_flight the server answers 'overloaded', not queueing."""
        server = make_server(max_in_flight=1)
        try:
            release = threading.Event()
            entered = threading.Event()
            original = server.linker.link_text

            def slow_link_text(text, source_classes=()):
                entered.set()
                release.wait(10)
                return original(text, source_classes=source_classes)

            server.linker.link_text = slow_link_text
            result: dict = {}

            def occupant() -> None:
                with NNexusClient(*server.address, retry=RetryPolicy.none()) as c:
                    result["links"] = c.link_entry("a tree", classes=["05C05"])[1]

            thread = threading.Thread(target=occupant)
            thread.start()
            assert entered.wait(5)
            try:
                with NNexusClient(
                    *server.address, retry=RetryPolicy.none()
                ) as client:
                    with pytest.raises(RemoteError) as excinfo:
                        client.ping()
                assert excinfo.value.code == "overloaded"
                assert excinfo.value.retryable
            finally:
                release.set()
            thread.join(timeout=10)
            # The admitted request was served to completion.
            assert result["links"], "occupant request should have succeeded"
        finally:
            server.shutdown()
            server.server_close()

    def test_draining_server_sheds(self) -> None:
        server = make_server()
        client = NNexusClient(*server.address, retry=RetryPolicy.none())
        try:
            server._draining.set()
            with pytest.raises(RemoteError) as excinfo:
                client.ping()
            assert excinfo.value.code == "overloaded"
        finally:
            client.close()
            server.shutdown()
            server.server_close()


class TestProtocolRobustness:
    def test_unknown_method_keeps_connection_usable(self, server) -> None:
        """An unknown method gets an error reply, not a dead connection."""
        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(protocol.frame('<request method="selfDestruct"/>'))
            reply = protocol.decode_response(protocol.read_frame(sock.recv))
            assert reply.status == "error"
            assert reply.code == "bad-request"
            assert not reply.retryable
            # Same connection, next request: still served.
            sock.sendall(protocol.frame('<request method="ping"/>'))
            reply = protocol.decode_response(protocol.read_frame(sock.recv))
            assert reply.ok
            assert reply.fields["pong"] == "1"

    def test_missing_objectid_is_bad_request(self, server) -> None:
        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(protocol.frame('<request method="removeObject"/>'))
            reply = protocol.decode_response(protocol.read_frame(sock.recv))
            assert reply.status == "error"
            assert reply.code == "bad-request"
            assert "objectid" in reply.error

    def test_garbage_objectid_is_bad_request(self, server) -> None:
        host, port = server.address
        message = protocol.encode_request(
            protocol.Request("setPolicy", fields={"objectid": "banana", "policy": ""})
        )
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(protocol.frame(message))
            reply = protocol.decode_response(protocol.read_frame(sock.recv))
            assert reply.status == "error"
            assert reply.code == "bad-request"
            assert "banana" in reply.error

    def test_internal_failure_reports_internal_code(self, server) -> None:
        """A crash inside a handler becomes code='internal', not silence."""

        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        server.linker.describe = boom
        with NNexusClient(*server.address, retry=RetryPolicy.none()) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.describe()
        assert excinfo.value.code == "internal"
        assert not excinfo.value.retryable


class TestDeadlines:
    def test_slow_loris_connection_is_cut(self) -> None:
        """A trickled header cannot pin a handler thread."""
        server = make_server(request_timeout=0.2, idle_timeout=5.0)
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(b"00000")  # half a frame header, then stall
                sock.settimeout(5)
                started = time.monotonic()
                data = b""
                try:
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        data += chunk
                except (TimeoutError, OSError):
                    pytest.fail("server did not close the slow-loris connection")
                assert time.monotonic() - started < 4
                if data:  # best-effort deadline reply before the close
                    reply = protocol.decode_response(
                        protocol.read_frame(_BufferedRecv(data))
                    )
                    assert reply.code == "deadline"
                    assert reply.retryable
        finally:
            server.shutdown()
            server.server_close()

    def test_idle_connection_is_reaped(self) -> None:
        server = make_server(request_timeout=5.0, idle_timeout=0.2)
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.settimeout(5)
                assert sock.recv(4096) == b""  # closed without a reply
        finally:
            server.shutdown()
            server.server_close()

    def test_client_deadline_bounds_retries(self, server, faults) -> None:
        from repro.core.errors import DeadlineExceededError

        faults.drop_connection(on_request=1)
        faults.drop_connection(on_request=2)
        faults.drop_connection(on_request=3)
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.5, jitter=0.0, deadline=0.3
        )
        with NNexusClient(*server.address, retry=policy) as client:
            with pytest.raises(DeadlineExceededError):
                client.ping()


class TestGracefulShutdown:
    def test_drains_in_flight_requests(self) -> None:
        server = make_server()
        release = threading.Event()
        entered = threading.Event()
        original = server.linker.link_text

        def slow_link_text(text, source_classes=()):
            entered.set()
            release.wait(10)
            return original(text, source_classes=source_classes)

        server.linker.link_text = slow_link_text
        result: dict = {}

        def occupant() -> None:
            with NNexusClient(*server.address, retry=RetryPolicy.none()) as c:
                result["links"] = c.link_entry("a tree", classes=["05C05"])[1]

        thread = threading.Thread(target=occupant)
        thread.start()
        assert entered.wait(5)

        done = threading.Event()
        drained: dict = {}

        def shutter() -> None:
            drained["ok"] = server.shutdown_gracefully(drain_timeout=10)
            done.set()

        threading.Thread(target=shutter).start()
        time.sleep(0.1)
        assert not done.is_set()  # still waiting on the in-flight request
        release.set()
        thread.join(timeout=10)
        assert done.wait(10)
        assert drained["ok"]
        assert result["links"], "in-flight request must complete during drain"


class _BufferedRecv:
    """recv(n) over a captured byte string (for parsing dead-socket data)."""

    def __init__(self, data: bytes) -> None:
        self._data = data

    def __call__(self, count: int) -> bytes:
        chunk, self._data = self._data[:count], self._data[count:]
        return chunk
