"""Read-only degradation across the server stack.

When the linker's journal fails, mutations must come back over the
wire as a non-retryable ``read-only`` error while reads keep serving,
and the HTTP gateway's ``/ready`` must advertise the degraded mode so
probes and write-routing load balancers can react.
"""

import json
import urllib.request

import pytest

from repro.core.linker import NNexus
from repro.core.models import CorpusObject
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.persistence import open_storage
from repro.server.client import NNexusClient, RemoteError
from repro.server.http_gateway import serve_http
from repro.server.server import serve_forever
from repro.storage.faults import StorageFaultInjector


def degraded_linker(tmp_path) -> NNexus:
    faults = StorageFaultInjector()
    storage = open_storage("engine", tmp_path / "data", faults=faults)
    linker = NNexus(scheme=build_small_msc(), storage=storage)
    linker.add_objects(sample_corpus())
    faults.fail_fsync(1)
    # This mutation succeeds in memory but its journal write fails,
    # flipping the linker to read-only.
    linker.add_object(CorpusObject(901, "chromatic number", classes=["05C15"]))
    assert linker.read_only
    return linker


class TestSocketServer:
    def test_writes_refused_reads_served(self, tmp_path) -> None:
        linker = degraded_linker(tmp_path)
        server = serve_forever(linker)
        try:
            with NNexusClient(*server.address) as client:
                # Reads keep flowing in read-only mode.
                assert client.describe()["read_only"] == 1
                body, links = client.link_entry(
                    "every planar graph has connected components",
                    classes=["05C10"],
                )
                assert links
                # Writes come back as a typed, non-retryable error.
                with pytest.raises(RemoteError) as excinfo:
                    client.add_object(CorpusObject(902, "girth", defines=["girth"]))
                assert excinfo.value.code == "read-only"
                assert excinfo.value.retryable is False
        finally:
            server.shutdown()
            server.server_close()
            linker.storage.close()


class TestHttpGateway:
    def get(self, gateway, path):
        host, port = gateway.address
        with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=5) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))

    def test_ready_reports_read_only_mode(self, tmp_path) -> None:
        linker = degraded_linker(tmp_path)
        gateway = serve_http(linker)
        try:
            status, payload = self.get(gateway, "/ready")
            assert status == 200
            assert payload["status"] == "ready"
            assert payload["mode"] == "read-only"
            assert "FaultInjectedError" in payload["reason"]
        finally:
            gateway.shutdown()
            gateway.server_close()
            linker.storage.close()

    def test_ready_reports_serving_mode_when_healthy(self, tmp_path) -> None:
        storage = open_storage("engine", tmp_path / "data")
        linker = NNexus(scheme=build_small_msc(), storage=storage)
        gateway = serve_http(linker)
        try:
            status, payload = self.get(gateway, "/ready")
            assert status == 200
            assert payload == {"status": "ready", "mode": "serving"}
        finally:
            gateway.shutdown()
            gateway.server_close()
            storage.close()
