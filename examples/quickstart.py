"""Quickstart: automatic invocation linking in a dozen lines.

Builds a linker over the bundled PlanetMath-style sample corpus and
links a fresh paragraph against it, reproducing the paper's Fig. 1
worked example: "planar graph" resolves to the planar-graph entry, the
homonym "graph" is steered to the graph-theory definition (object 5)
rather than the set-theoretic one (object 6) because the source text is
classified under 05C40 (connectivity).

Run:  python examples/quickstart.py
"""

from repro import NNexus
from repro.core.render import render_html, render_annotations
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


def main() -> None:
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())
    print(f"corpus: {len(linker)} entries, {linker.concept_count()} concept labels\n")

    entry = (
        "A plane graph is a planar graph drawn so that no two edges "
        "cross. The faces are the connected components of the "
        "complement, and when the graph $G$ is even an Euler path visits "
        "every edge."
    )
    document = linker.link_text(entry, source_classes=["05C40"])

    print("annotated (phrase[->target id]):\n")
    print(render_annotations(document))
    print("\nhtml:\n")
    print(render_html(document))
    print("\nlinks:")
    for link in document.links:
        target = linker.get_object(link.target_id)
        print(f"  {link.source_phrase!r:28} -> {link.target_id:3} ({target.title})")


if __name__ == "__main__":
    main()
