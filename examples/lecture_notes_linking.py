"""Fig. 9 scenario: auto-linking lecture notes against two corpora.

The paper links probability lecture notes (Jim Pitman's Berkeley course)
against PlanetMath *and* MathWorld simultaneously, with a collection
priority deciding the winner when both sites define a concept.

Here two domains are configured ("planetmath" priority 1, "mathworld"
priority 2), each contributing entries; a handful of concepts are
defined by both, and the rendered notes show priority-based resolution:
every duplicated concept links to the planetmath copy.

Run:  python examples/lecture_notes_linking.py
"""

from repro import CorpusObject, DomainConfig, NNexus, NNexusConfig
from repro.core.render import render_markdown
from repro.corpus.lecture_notes import pitman_style_excerpt
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


def build_two_domain_linker() -> NNexus:
    config = NNexusConfig(
        domains={
            "planetmath": DomainConfig(
                name="planetmath",
                url_template="https://planetmath.org/encyclopedia/{title}.html",
                priority=1,
            ),
            "mathworld": DomainConfig(
                name="mathworld",
                url_template="https://mathworld.wolfram.com/{title}.html",
                priority=2,
            ),
        },
        default_domain="planetmath",
    )
    linker = NNexus(scheme=build_small_msc(), config=config)
    for obj in sample_corpus():
        obj.domain = "planetmath"
        linker.add_object(obj)
    # MathWorld-side entries: some unique, some competing with PlanetMath.
    mathworld_entries = [
        CorpusObject(1001, "Markov chain", defines=["Markov chain"],
                     classes=["60J10"], domain="mathworld",
                     text="A memoryless stochastic process."),
        CorpusObject(1002, "stochastic process", defines=["stochastic process"],
                     classes=["60G05"], domain="mathworld",
                     text="A family of random variables indexed by time."),
        CorpusObject(1003, "transition matrix", defines=["transition matrix"],
                     classes=["60J10"], domain="mathworld",
                     text="The matrix of one-step probabilities of a Markov chain."),
        CorpusObject(1004, "distribution", defines=["distribution"],
                     classes=["60E05"], domain="mathworld",
                     text="The law of a random variable."),
    ]
    linker.add_objects(mathworld_entries)
    return linker


def main() -> None:
    linker = build_two_domain_linker()
    note = pitman_style_excerpt()
    print(f"linking lecture note: {note.title!r} (classes {note.classes})\n")
    document = linker.link_text(note.text, source_classes=note.classes)

    print(render_markdown(document))
    print("\nresolution detail:")
    for link in document.links:
        print(f"  {link.source_phrase!r:24} -> {link.target_domain:>10} / {link.url}")

    duplicated = [l for l in document.links if l.source_phrase.lower() == "markov chain"]
    if duplicated:
        print(
            "\n'Markov chain' is defined by both domains; collection priority "
            f"sent it to {duplicated[0].target_domain} (priority 1)."
        )


if __name__ == "__main__":
    main()
