"""Deploying NNexus as a service (Fig. 7): XML requests over a socket.

Starts the threaded server on an ephemeral port, then acts as a client:
pings, inspects, links a blog paragraph, live-adds an object and links
again — demonstrating that third parties "link arbitrary documents to
particular corpora" without embedding the linker.

Run:  python examples/server_demo.py
"""

from repro import CorpusObject, NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.server import NNexusClient, serve_forever


def main() -> None:
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())
    server = serve_forever(linker)
    host, port = server.address
    print(f"server up on {host}:{port}\n")

    try:
        with NNexusClient(host, port) as client:
            print("ping ->", client.ping())
            print("describe ->", client.describe(), "\n")

            blog_post = (
                "Today I learned that every tree is a bipartite graph, and "
                "that the expectation of a random variable is linear."
            )
            body, links = client.link_entry(blog_post, classes=["05C05"], fmt="markdown")
            print("linked blog post:\n" + body + "\n")

            print("adding a new entry over the wire...")
            invalidated = client.add_object(
                CorpusObject(
                    object_id=600,
                    title="linearity of expectation",
                    defines=["linearity of expectation", "linear"],
                    classes=["60A05"],
                    text="Expectation distributes over sums of random variables.",
                )
            )
            print(f"server invalidated cached entries: {invalidated}")

            body, links = client.link_entry(blog_post, classes=["60A05"], fmt="markdown")
            print("\nsame post, after the corpus grew:\n" + body)
    finally:
        server.shutdown()
        print("\nserver stopped")


if __name__ == "__main__":
    main()
