"""A growing wiki: invalidation keeps old entries linked to new concepts.

Section 1.2 warns that keeping an evolving corpus fully linked manually
is an O(n^2) re-inspection problem.  This example shows NNexus's answer
(Section 2.5): entries are rendered and cached; when a *new* concept is
defined, the invalidation index pinpoints the minimal superset of
entries that might invoke it, marks exactly those dirty, and they get
fresh links on their next view — no corpus-wide rescan.

Run:  python examples/growing_wiki.py
"""

from repro import CorpusObject, NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


def main() -> None:
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())

    # Render (and cache) every entry once: the steady state of a wiki.
    for object_id in linker.object_ids():
        linker.render_object(object_id)
    print(f"rendered and cached {len(linker)} entries")
    print(f"cache hits={linker.cache.hits} misses={linker.cache.misses}\n")

    # A contributor defines a brand-new concept: "Euler characteristic".
    # The plane-graph and Euler-path entries mention related phrasing;
    # the invalidation index finds which cached entries *may* need links.
    new_entry = CorpusObject(
        object_id=500,
        title="face",
        defines=["face", "faces"],
        classes=["05C10"],
        text="A face of a plane graph is a connected component of the "
             "complement of the drawing.",
    )
    invalidated = linker.add_object(new_entry)
    print(f"added {new_entry.title!r}; invalidated entries: {sorted(invalidated)}")
    print(f"entries marked dirty in the cache: {linker.invalid_entries()}")
    print(f"(out of {len(linker)} — not a full rescan)\n")

    refreshed = linker.relink_invalidated()
    for object_id, html in refreshed.items():
        title = linker.get_object(object_id).title
        has_new_link = f"#object-{new_entry.object_id}" in html
        print(f"re-linked entry {object_id} ({title}): "
              f"{'now links to the new concept' if has_new_link else 'no new link needed'}")

    print(f"\ncache invalidations performed: {linker.cache.invalidations}")


if __name__ == "__main__":
    main()
