"""Build a browsable static encyclopedia from the sample corpus.

Writes one HTML page per entry (body auto-linked, metadata sidebar with
incoming links), an alphabetical index, a classification browser, and a
network-statistics page — the Noosphere-style deployment the paper's
engine powers in production.

Run:  python examples/build_site.py [output_dir]
"""

import sys
import tempfile

from repro import NNexus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc
from repro.site import SiteBuilder


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="nnexus-site-")
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())

    report = SiteBuilder(linker, site_title="PlanetSample").build(output_dir)
    print(f"site written to {report.output_dir}")
    print(f"  {report.entry_pages} entry pages, {report.index_pages} index pages")
    print(f"  {report.links_rendered} invocation links rendered")
    print(f"open {report.output_dir}/index.html in a browser to explore")


if __name__ == "__main__":
    main()
