"""Interlinking corpora that use *different* classification schemes.

Section 2.3 notes that steering "presents problems when attempting to
link across multiple sites, as different knowledge bases may not use the
same classification hierarchy" and points to ontology mapping as the
remedy (a Section 5 future-work thread; implemented here in
:mod:`repro.ontology.mapping`).

This example builds a second corpus classified under a homegrown
"topics" scheme, maps that scheme onto the MSC by label similarity, adds
bridge edges to the steering graph, and shows a homonym being resolved
*across schemes* — impossible with two disconnected hierarchies.

Run:  python examples/multi_corpus_ontology.py
"""

from repro import CorpusObject, NNexus
from repro.core.classification import ClassificationGraph, ClassificationSteering
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.mapping import add_scheme_to_graph, map_schemes, merge_into_graph
from repro.ontology.msc import build_small_msc
from repro.ontology.scheme import ClassificationScheme


def build_topics_scheme() -> ClassificationScheme:
    """A small e-learning taxonomy with its own codes."""
    scheme = ClassificationScheme("topics")
    scheme.add_class("DM", "Discrete mathematics")
    scheme.add_class("DM-GT", "Graph theory", parent="DM")
    scheme.add_class("DM-CO", "Enumerative combinatorics", parent="DM")
    scheme.add_class("FN", "Foundations")
    scheme.add_class("FN-ST", "Set theory", parent="FN")
    scheme.add_class("FN-LO", "General logic", parent="FN")
    scheme.add_class("PR", "Probability theory and stochastic processes")
    scheme.add_class("PR-MC", "Markov processes", parent="PR")
    return scheme


def main() -> None:
    msc = build_small_msc()
    topics = build_topics_scheme()

    mapping = map_schemes(topics, msc)
    print("ontology mapping (topics -> msc):")
    for class_mapping in sorted(mapping.mappings.values(), key=lambda m: m.source):
        print(f"  {class_mapping.source:6} -> {class_mapping.target:6} "
              f"[{class_mapping.method}, confidence {class_mapping.confidence:.2f}]")
    print(f"coverage: {mapping.coverage():.0%}\n")

    # One steering graph holding both schemes plus confident bridges.
    graph = ClassificationGraph.from_scheme(msc)
    add_scheme_to_graph(graph, topics)
    bridges = merge_into_graph(graph, mapping, bridge_weight=1.0, min_confidence=0.5)
    print(f"added {bridges} bridge edges to the steering graph\n")

    linker = NNexus(scheme=msc)
    linker._steering = ClassificationSteering(graph)  # swap in the merged graph
    linker.add_objects(sample_corpus())
    linker.add_object(
        CorpusObject(2001, "course glossary: graph", defines=["graph"],
                     classes=["DM-GT"], domain="default",
                     text="Course definition of a graph as vertices and edges.")
    )

    # A document classified only under the foreign scheme still steers:
    # "graph" must resolve toward graph theory, not set theory.
    document = linker.link_text(
        "Any connected graph on two vertices contains an edge.",
        source_classes=["DM-GT"],
    )
    for link in document.links:
        target = linker.get_object(link.target_id)
        print(f"{link.source_phrase!r:12} -> object {link.target_id} "
              f"({target.title}, classes {target.classes})")


if __name__ == "__main__":
    main()
