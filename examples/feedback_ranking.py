"""Section 5 extensions: CF link ranking, reputation, auto-policies.

Three future-work threads of the paper, running against the sample
corpus:

1. the entry-entry link matrix and collaborative-filtering scores
   (Section 1.2's recommender-system framing);
2. reputation from user feedback steering tie-breaks;
3. automatic keyword extraction proposing forgotten concept labels.

Run:  python examples/feedback_ranking.py
"""

from repro import NNexus
from repro.core.keywords import KeywordExtractor
from repro.core.ranking import CompositeRanker, LinkMatrix, ReputationTable
from repro.corpus.planetmath_sample import GRAPH_ID, SET_GRAPH_ID, sample_corpus
from repro.ontology.msc import build_small_msc


def main() -> None:
    linker = NNexus(scheme=build_small_msc())
    linker.add_objects(sample_corpus())

    # Build the entry-entry link matrix from one linking pass.
    matrix = LinkMatrix()
    for object_id in linker.object_ids():
        document = linker.link_object(object_id)
        matrix.record_document(object_id, document.targets())
    print(f"link matrix: {len(matrix)} linking entries")
    print("entries most similar to 'plane graph' (id 1):")
    for other, similarity in matrix.neighbors(1, k=3):
        print(f"  {linker.get_object(other).title:24} similarity {similarity:.2f}")

    # Simulated reader feedback: set-theory 'graph' links got downvoted
    # from graph-theory pages.
    reputation = ReputationTable()
    for __ in range(12):
        reputation.record_feedback(SET_GRAPH_ID, helpful=False)
        reputation.record_feedback(GRAPH_ID, helpful=True)
    print(f"\nreputation: graph={reputation.reputation(GRAPH_ID):.2f}, "
          f"graph(set theory)={reputation.reputation(SET_GRAPH_ID):.2f}")

    ranker = CompositeRanker(
        steering=linker.steering,
        link_matrix=matrix,
        reputation=reputation,
    )
    ranked = ranker.rank(1, ["05C10"], {
        GRAPH_ID: ["05C99"],
        SET_GRAPH_ID: ["03E20"],
    })
    print("\ncomposite ranking for the homonym 'graph' from a 05C10 source:")
    for candidate in ranked:
        title = linker.get_object(candidate.object_id).title
        print(f"  {title:24} score {candidate.score:.3f} "
              f"(class {candidate.class_score:.2f}, cf {candidate.cf_score:.2f}, "
              f"rep {candidate.reputation:.2f})")

    # Keyword extraction: labels an author may have forgotten to declare.
    extractor = KeywordExtractor()
    extractor.observe_corpus(sample_corpus())
    markov = linker.get_object(20)
    print(f"\nsuggested extra labels for {markov.title!r}:")
    for candidate in extractor.suggest_labels(markov, top_k=4):
        print(f"  {candidate.text!r} (score {candidate.score:.1f})")


if __name__ == "__main__":
    main()
