"""Collaborative editing: revisions, diffs, rollback, standoff export.

Walks a small editing session on top of the sample corpus:

1. a contributor improves the 'tree' entry (re-linked automatically);
2. a vandal blanks it (also a revision!);
3. a moderator inspects the word diff and restores revision 1;
4. the final linked entry is exported as W3C Web Annotations so
   third-party tools can consume the links without re-running NNexus.

Run:  python examples/collaborative_editing.py
"""

from dataclasses import replace

from repro import NNexus
from repro.core.annotations import annotations_to_json
from repro.core.revisions import RevisionedCorpus
from repro.corpus.planetmath_sample import sample_corpus
from repro.ontology.msc import build_small_msc


def main() -> None:
    linker = NNexus(scheme=build_small_msc())
    wiki = RevisionedCorpus(linker)
    for obj in sample_corpus():
        wiki.save(obj, author="importer", comment="initial import")
    print(f"imported {len(linker)} entries as revision history\n")

    tree = linker.get_object(11)
    improved = replace(
        tree,
        defines=list(tree.defines),
        synonyms=list(tree.synonyms),
        classes=list(tree.classes),
        text=tree.text + " A spanning tree of a connected graph touches "
                          "every vertex.",
    )
    revision = wiki.save(improved, author="alice", comment="add spanning trees")
    print(f"alice's edit -> revision {revision.number}, "
          f"re-linked: {revision.relinked}")

    vandalized = replace(improved, text="deleted lol")
    revision = wiki.save(vandalized, author="vandal", comment="")
    print(f"vandal's edit -> revision {revision.number}")

    print("\nmoderator reviews the diff (last good vs vandalized):")
    good_number = wiki.history(11)[-2].number
    for op, words in wiki.diff(11, good_number, revision.number):
        if op != "=":
            print(f"  {op} {words[:60]}")

    restored = wiki.restore(11, good_number, author="moderator")
    print(f"\nrestored -> revision {restored.number} "
          f"({restored.comment}); contributors: {wiki.authors(11)}")
    print(f"editing churn: {wiki.relink_churn([11])}")

    document = linker.link_object(11)
    print(f"\nfinal entry carries {document.link_count} links; "
          "as Web Annotations:")
    print(annotations_to_json(document, source_iri="urn:planetsample:tree")[:400]
          + " ...")


if __name__ == "__main__":
    main()
